//! Bit-granular I/O over byte buffers.
//!
//! Codewords have arbitrary bit lengths, so encoders need sub-byte
//! writes. [`BitWriter`] packs MSB-first into a [`bytes::BytesMut`];
//! [`BitReader`] replays the stream bit by bit.

use bytes::{BufMut, BytesMut};

/// MSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Bits used in the trailing partial byte (0..8; 0 = byte-aligned).
    partial_bits: u8,
    partial: u8,
    len_bits: u64,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        self.partial = (self.partial << 1) | u8::from(bit);
        self.partial_bits += 1;
        self.len_bits += 1;
        if self.partial_bits == 8 {
            self.buf.put_u8(self.partial);
            self.partial = 0;
            self.partial_bits = 0;
        }
    }

    /// Appends the low `len` bits of `bits`, most significant first.
    pub fn push_bits(&mut self, bits: u64, len: u32) {
        assert!(len <= 64);
        for k in (0..len).rev() {
            self.push((bits >> k) & 1 == 1);
        }
    }

    /// Total bits written.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Finishes (zero-padding the final byte) and returns the bytes plus
    /// the exact bit length.
    pub fn finish(mut self) -> (Vec<u8>, u64) {
        if self.partial_bits > 0 {
            let pad = 8 - self.partial_bits;
            self.buf.put_u8(self.partial << pad);
        }
        (self.buf.to_vec(), self.len_bits)
    }
}

/// MSB-first bit reader.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
    len_bits: u64,
}

impl<'a> BitReader<'a> {
    /// Reads `len_bits` bits from `bytes`.
    pub fn new(bytes: &'a [u8], len_bits: u64) -> BitReader<'a> {
        assert!(
            len_bits <= bytes.len() as u64 * 8,
            "declared length exceeds buffer"
        );
        BitReader {
            bytes,
            pos: 0,
            len_bits,
        }
    }

    /// Next bit, or `None` at end of stream.
    #[inline]
    pub fn next_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len_bits {
            return None;
        }
        let byte = self.bytes[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        self.len_bits - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let pattern = [
            true, false, false, true, true, true, false, true, true, false,
        ];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.push(b);
        }
        assert_eq!(w.len_bits(), 10);
        let (bytes, len) = w.finish();
        assert_eq!(len, 10);
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes, len);
        let got: Vec<bool> = std::iter::from_fn(|| r.next_bit()).collect();
        assert_eq!(got, pattern);
    }

    #[test]
    fn push_bits_msb_first() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0b01, 2);
        let (bytes, len) = w.finish();
        assert_eq!(len, 5);
        assert_eq!(bytes, vec![0b10101000]);
    }

    #[test]
    fn empty_stream() {
        let (bytes, len) = BitWriter::new().finish();
        assert!(bytes.is_empty());
        assert_eq!(len, 0);
        let mut r = BitReader::new(&bytes, 0);
        assert_eq!(r.next_bit(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn exact_byte_boundary() {
        let mut w = BitWriter::new();
        w.push_bits(0xAB, 8);
        let (bytes, len) = w.finish();
        assert_eq!((bytes.as_slice(), len), (&[0xABu8][..], 8));
    }

    #[test]
    fn reader_stops_at_declared_length() {
        let bytes = [0xFF];
        let mut r = BitReader::new(&bytes, 3);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.next_bit(), Some(true));
        assert_eq!(r.next_bit(), Some(true));
        assert_eq!(r.next_bit(), Some(true));
        assert_eq!(r.next_bit(), None);
    }

    #[test]
    #[should_panic(expected = "declared length")]
    fn overlong_declaration_panics() {
        let _ = BitReader::new(&[0x00], 9);
    }
}
