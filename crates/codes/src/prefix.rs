//! Prefix codes: codeword tables, encoding, decoding.
//!
//! A prefix code is read directly off a code tree: the path to leaf `i`
//! (left = 0, right = 1) is symbol `i`'s codeword. Prefix-freeness is
//! structural — no leaf is an ancestor of another — which gives unique
//! decipherability (§1's Kraft/McMillan discussion).

use crate::bitio::{BitReader, BitWriter};
use partree_core::{Error, Result};
use partree_trees::arena::NONE;
use partree_trees::Tree;

/// One codeword: up-to-arbitrary-length bit string, MSB-first across
/// `words`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Codeword {
    bits: Vec<u64>,
    len: u32,
}

impl Codeword {
    fn new() -> Codeword {
        Codeword {
            bits: Vec::new(),
            len: 0,
        }
    }

    fn push(&mut self, bit: bool) {
        let word = (self.len / 64) as usize;
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if bit {
            self.bits[word] |= 1 << (63 - (self.len % 64));
        }
        self.len += 1;
    }

    /// Length in bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` for the empty codeword (single-symbol alphabet).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `k` (0 = first transmitted).
    pub fn bit(&self, k: u32) -> bool {
        debug_assert!(k < self.len);
        (self.bits[(k / 64) as usize] >> (63 - (k % 64))) & 1 == 1
    }

    /// Renders as a 0/1 string.
    pub fn to_bit_string(&self) -> String {
        (0..self.len)
            .map(|k| if self.bit(k) { '1' } else { '0' })
            .collect()
    }
}

/// A prefix code: one codeword per symbol, plus the decoding tree.
#[derive(Debug, Clone)]
pub struct PrefixCode {
    words: Vec<Codeword>,
    tree: Tree,
}

impl PrefixCode {
    /// Extracts the code from a code tree whose leaves are tagged with
    /// the symbol indices `0 … n-1` (each exactly once).
    pub fn from_tree(tree: &Tree, n_symbols: usize) -> Result<PrefixCode> {
        let mut words = vec![None; n_symbols];
        // DFS carrying the path.
        let mut stack: Vec<(usize, Codeword)> = vec![(tree.root(), Codeword::new())];
        while let Some((v, path)) = stack.pop() {
            let node = &tree.nodes()[v];
            if node.is_leaf() {
                let tag = node
                    .tag
                    .ok_or_else(|| Error::invalid("code tree has an untagged leaf"))?;
                if tag >= n_symbols {
                    return Err(Error::invalid(format!("leaf tag {tag} out of range")));
                }
                if words[tag].is_some() {
                    return Err(Error::invalid(format!("symbol {tag} appears twice")));
                }
                words[tag] = Some(path);
                continue;
            }
            if node.left != NONE {
                let mut p = path.clone();
                p.push(false);
                stack.push((node.left, p));
            }
            if node.right != NONE {
                let mut p = path;
                p.push(true);
                stack.push((node.right, p));
            }
        }
        let words: Vec<Codeword> = words
            .into_iter()
            .enumerate()
            .map(|(i, w)| w.ok_or_else(|| Error::invalid(format!("symbol {i} missing from tree"))))
            .collect::<Result<_>>()?;
        Ok(PrefixCode {
            words,
            tree: tree.clone(),
        })
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The codeword for `symbol`.
    pub fn codeword(&self, symbol: usize) -> &Codeword {
        &self.words[symbol]
    }

    /// Code lengths per symbol.
    pub fn lengths(&self) -> Vec<u32> {
        self.words.iter().map(Codeword::len).collect()
    }

    /// Encodes a symbol sequence; returns `(bytes, bit length)`.
    pub fn encode(&self, symbols: &[usize]) -> Result<(Vec<u8>, u64)> {
        let mut w = BitWriter::new();
        for &s in symbols {
            let cw = self
                .words
                .get(s)
                .ok_or_else(|| Error::invalid(format!("symbol {s} out of alphabet")))?;
            for k in 0..cw.len() {
                w.push(cw.bit(k));
            }
        }
        Ok(w.finish())
    }

    /// Decodes a bit stream back into symbols (walking the code tree).
    ///
    /// Like [`crate::decoder::CanonicalDecoder::decode`], malformed
    /// input — an overlong declared length, a truncated codeword, a
    /// bit path that leaves the tree — is an `Err`, never a panic.
    pub fn decode(&self, bytes: &[u8], len_bits: u64) -> Result<Vec<usize>> {
        if len_bits > bytes.len() as u64 * 8 {
            return Err(Error::invalid(format!(
                "declared length {len_bits} bits exceeds the {}-byte buffer",
                bytes.len()
            )));
        }
        let mut out = Vec::new();
        let mut r = BitReader::new(bytes, len_bits);
        let nodes = self.tree.nodes();
        // Single-symbol alphabet: the empty codeword decodes by count —
        // encode produced 0 bits, so nothing to do (callers carry symbol
        // counts out of band for that degenerate alphabet).
        if self.words.len() == 1 && self.words[0].is_empty() {
            if len_bits != 0 {
                return Err(Error::invalid("unexpected bits for single-symbol code"));
            }
            return Ok(out);
        }
        let mut cur = self.tree.root();
        while let Some(bit) = r.next_bit() {
            let node = &nodes[cur];
            cur = if bit { node.right } else { node.left };
            if cur == NONE {
                return Err(Error::invalid("invalid bit sequence for this code"));
            }
            if nodes[cur].is_leaf() {
                out.push(nodes[cur].tag.expect("validated in from_tree"));
                cur = self.tree.root();
            }
        }
        if cur != self.tree.root() {
            return Err(Error::invalid("truncated codeword at end of stream"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partree_huffman::sequential::huffman_heap;

    fn code_for(weights: &[f64]) -> PrefixCode {
        let h = huffman_heap(weights).unwrap();
        PrefixCode::from_tree(&h.tree, weights.len()).unwrap()
    }

    #[test]
    fn codewords_match_tree_depths() {
        let h = huffman_heap(&[5.0, 9.0, 12.0, 13.0, 16.0, 45.0]).unwrap();
        let code = PrefixCode::from_tree(&h.tree, 6).unwrap();
        assert_eq!(code.lengths(), h.lengths);
    }

    #[test]
    fn prefix_freeness() {
        let code = code_for(&[1.0, 2.0, 4.0, 8.0, 16.0]);
        for a in 0..5 {
            for b in 0..5 {
                if a == b {
                    continue;
                }
                let (ca, cb) = (code.codeword(a), code.codeword(b));
                if ca.len() <= cb.len() {
                    let is_prefix = (0..ca.len()).all(|k| ca.bit(k) == cb.bit(k));
                    assert!(!is_prefix, "{a} is a prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let code = code_for(&[10.0, 3.0, 7.0, 1.0]);
        let msg = vec![0, 1, 2, 3, 2, 1, 0, 0, 3, 3, 2];
        let (bytes, bits) = code.encode(&msg).unwrap();
        let back = code.decode(&bytes, bits).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn encoded_length_is_sum_of_codeword_lengths() {
        let code = code_for(&[1.0, 1.0, 2.0]);
        let msg = vec![0, 0, 1, 2];
        let (_, bits) = code.encode(&msg).unwrap();
        let expect: u64 = msg.iter().map(|&s| u64::from(code.codeword(s).len())).sum();
        assert_eq!(bits, expect);
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let code = code_for(&[1.0, 1.0, 1.0, 1.0]);
        let (bytes, bits) = code.encode(&[0, 1, 2]).unwrap();
        assert!(code.decode(&bytes, bits - 1).is_err());
    }

    #[test]
    fn decode_rejects_overlong_declared_length() {
        let code = code_for(&[1.0, 1.0, 1.0, 1.0]);
        let (bytes, bits) = code.encode(&[0, 1, 2]).unwrap();
        assert!(code.decode(&bytes, bytes.len() as u64 * 8 + 1).is_err());
        assert!(code.decode(&[], 4).is_err());
        let _ = (bytes, bits);
    }

    #[test]
    fn decode_handles_unary_chain_trees() {
        // Shannon–Fano-style trees contain unary nodes: a 1-bit at a
        // unary node is an invalid stream.
        let t = partree_trees::pattern::build_exact(&[2, 1]).unwrap();
        let code = PrefixCode::from_tree(&t, 2).unwrap();
        assert_eq!(code.codeword(0).len(), 2);
        let msg = vec![0, 1, 0];
        let (bytes, bits) = code.encode(&msg).unwrap();
        assert_eq!(code.decode(&bytes, bits).unwrap(), msg);
    }

    #[test]
    fn single_symbol_alphabet() {
        let t = Tree::leaf(Some(0));
        let code = PrefixCode::from_tree(&t, 1).unwrap();
        let (bytes, bits) = code.encode(&[0, 0, 0]).unwrap();
        assert_eq!(bits, 0);
        assert!(code.decode(&bytes, bits).unwrap().is_empty());
    }

    #[test]
    fn missing_and_duplicate_symbols_rejected() {
        let t = Tree::leaf(Some(0));
        assert!(PrefixCode::from_tree(&t, 2).is_err());
        let mut b = partree_trees::arena::TreeBuilder::new();
        let x = b.leaf(Some(0));
        let y = b.leaf(Some(0));
        let r = b.internal(x, Some(y));
        let t = b.build(r).unwrap();
        assert!(PrefixCode::from_tree(&t, 1).is_err());
    }

    #[test]
    fn encode_rejects_out_of_alphabet_symbols() {
        let code = code_for(&[1.0, 1.0]);
        assert!(code.encode(&[0, 5]).is_err());
    }

    #[test]
    fn bit_string_rendering() {
        let code = code_for(&[1.0, 1.0]);
        let s0 = code.codeword(0).to_bit_string();
        let s1 = code.codeword(1).to_bit_string();
        assert_eq!(s0.len(), 1);
        assert_ne!(s0, s1);
    }
}
