//! # partree-codes
//!
//! Prefix codes over `Σ = {0, 1}`: the deliverable the paper's tree
//! algorithms exist to produce.
//!
//! * [`analysis`] — entropy, redundancy, Kraft slack — the yardsticks
//!   of §1's optimal-code discussion;
//! * [`bitio`] — bit-granular writer/reader over byte buffers;
//! * [`prefix`] — codeword tables derived from code trees, encoding and
//!   decoding of symbol streams (uniquely decipherable by
//!   prefix-freeness — the Kraft/McMillan observation of §1);
//! * [`canonical`] — canonical codes from code lengths alone (the form
//!   used to ship a code table compactly);
//! * [`decoder`] — the length-indexed table decoder for canonical codes
//!   (the DEFLATE-class fast path, no tree walking);
//! * [`shannon_fano`] — Theorem 7.4: the Shannon–Fano code built with
//!   the monotone tree construction, within one bit of Huffman
//!   (Claim 7.1).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod bitio;
pub mod canonical;
pub mod decoder;
pub mod prefix;
pub mod shannon_fano;

pub use prefix::PrefixCode;
pub use shannon_fano::{shannon_fano, ShannonFanoCode};
