//! A table-driven decoder for canonical codes.
//!
//! Tree-walking decode costs one pointer chase per bit. Canonical codes
//! admit the classic length-indexed decode instead: because all
//! codewords of one length are numerically consecutive, a decoder only
//! needs, per length `l`, the numeric value of the first codeword
//! (`first[l]`), how many there are (`count[l]`), and the symbol table
//! sorted in canonical order. Reading bits accumulates a value `v`; as
//! soon as `v − first[l] < count[l]` the codeword is complete. This is
//! the decoder DEFLATE-class formats use, built here on the same
//! canonical convention as [`crate::canonical::canonical_code`]
//! (deepest codewords numerically smallest).

use crate::bitio::BitReader;
use crate::prefix::PrefixCode;
use partree_core::{Error, Result};

/// A length-indexed canonical decoder.
#[derive(Debug, Clone)]
pub struct CanonicalDecoder {
    /// `first[l]`: numeric value of the first (smallest) codeword of
    /// length `l`.
    first: Vec<u64>,
    /// `count[l]`: number of codewords of length `l`.
    count: Vec<u64>,
    /// Symbols sorted in canonical order (by length desc, symbol asc),
    /// with `offset[l]` locating each length's block.
    symbols: Vec<usize>,
    offset: Vec<usize>,
    max_len: usize,
}

impl CanonicalDecoder {
    /// Builds the decoder from per-symbol code lengths. The lengths
    /// must describe a canonical code in this crate's convention (the
    /// output of [`crate::canonical::canonical_code`]).
    pub fn from_lengths(lengths: &[u32]) -> Result<CanonicalDecoder> {
        if lengths.is_empty() {
            return Err(Error::invalid("empty alphabet"));
        }
        if let Some(&l) = lengths.iter().find(|&&l| l > 64) {
            return Err(Error::invalid(format!("length {l} exceeds 64 bits")));
        }
        let max_len = *lengths.iter().max().expect("non-empty") as usize;
        let mut count = vec![0u64; max_len + 1];
        for &l in lengths {
            count[l as usize] += 1;
        }
        // Canonical order: length descending, symbol ascending (the
        // convention of `canonical_code`: deepest leftmost).
        let mut symbols: Vec<usize> = (0..lengths.len()).collect();
        symbols.sort_by(|&a, &b| lengths[b].cmp(&lengths[a]).then(a.cmp(&b)));
        // first[l]: longer codes occupy the numerically smaller range —
        // first[l] = ⌈(first[l+1] + count[l+1]) / 2⌉ walking up from the
        // deepest level (the level-layout recurrence of
        // `trees::level_build` read as code values).
        let mut first = vec![0u64; max_len + 2];
        let mut carry = 0u64;
        for l in (1..=max_len).rev() {
            first[l] = carry;
            carry = (carry + count[l]).div_ceil(2);
        }
        if max_len == 0 {
            // Single-symbol alphabet with the empty codeword.
            if lengths.len() != 1 {
                return Err(Error::InfeasiblePattern { trees_needed: None });
            }
        } else if carry > 1 {
            return Err(Error::InfeasiblePattern { trees_needed: None });
        }
        let mut offset = vec![0usize; max_len + 2];
        // Blocks in `symbols` run deepest-first.
        let mut acc = 0usize;
        for l in (0..=max_len).rev() {
            offset[l] = acc;
            acc += count[l] as usize;
        }
        Ok(CanonicalDecoder {
            first: first[..=max_len.max(1)].to_vec(),
            count,
            symbols,
            offset,
            max_len,
        })
    }

    /// Decodes `len_bits` bits into symbols.
    ///
    /// Hardened against untrusted input: every malformed stream — a
    /// declared length longer than the buffer, a codeword truncated at
    /// end of stream, or bits that match no codeword in the book —
    /// returns [`Error::InvalidInput`]; this method never panics.
    pub fn decode(&self, bytes: &[u8], len_bits: u64) -> Result<Vec<usize>> {
        if len_bits > bytes.len() as u64 * 8 {
            return Err(Error::invalid(format!(
                "declared length {len_bits} bits exceeds the {}-byte buffer",
                bytes.len()
            )));
        }
        if self.max_len == 0 {
            return if len_bits == 0 {
                Ok(Vec::new())
            } else {
                Err(Error::invalid("unexpected bits for single-symbol code"))
            };
        }
        let mut out = Vec::new();
        let mut r = BitReader::new(bytes, len_bits);
        let mut v = 0u64;
        let mut l = 0usize;
        while let Some(bit) = r.next_bit() {
            v = (v << 1) | u64::from(bit);
            l += 1;
            if l > self.max_len {
                return Err(Error::invalid("bit sequence exceeds the longest codeword"));
            }
            if l < self.count.len() && self.count[l] > 0 && v >= self.first[l] {
                let idx = v - self.first[l];
                if idx < self.count[l] {
                    out.push(self.symbols[self.offset[l] + idx as usize]);
                    v = 0;
                    l = 0;
                }
            }
        }
        if l != 0 {
            return Err(Error::invalid("truncated codeword at end of stream"));
        }
        Ok(out)
    }

    /// Convenience: builds a decoder matching an existing canonical
    /// [`PrefixCode`].
    pub fn from_code(code: &PrefixCode) -> Result<CanonicalDecoder> {
        CanonicalDecoder::from_lengths(&code.lengths())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonical_code;
    use partree_core::gen;
    use partree_huffman::sequential::huffman_heap;

    fn roundtrip(lengths: &[u32], msg: &[usize]) {
        let code = canonical_code(lengths).unwrap();
        let dec = CanonicalDecoder::from_lengths(lengths).unwrap();
        let (bytes, bits) = code.encode(msg).unwrap();
        assert_eq!(
            dec.decode(&bytes, bits).unwrap(),
            msg,
            "lengths {lengths:?}"
        );
        // And the tree decoder agrees.
        assert_eq!(code.decode(&bytes, bits).unwrap(), msg);
    }

    #[test]
    fn deflate_style_lengths() {
        let lengths = [3u32, 3, 3, 3, 3, 2, 4, 4];
        let msg: Vec<usize> = (0..8).chain([5, 5, 0, 7, 6]).collect();
        roundtrip(&lengths, &msg);
    }

    #[test]
    fn huffman_lengths_across_distributions() {
        for seed in 0..8 {
            let w = gen::zipf_weights(64, 1.1, seed);
            let h = huffman_heap(&w).unwrap();
            let msg: Vec<usize> = (0..64).chain((0..64).rev()).collect();
            roundtrip(&h.lengths, &msg);
        }
    }

    #[test]
    fn underfull_codes() {
        roundtrip(&[3, 3], &[0, 1, 1, 0]);
        roundtrip(&[2, 5, 5], &[2, 0, 1]);
    }

    #[test]
    fn single_symbol_alphabet() {
        let dec = CanonicalDecoder::from_lengths(&[0]).unwrap();
        assert!(dec.decode(&[], 0).unwrap().is_empty());
        assert!(dec.decode(&[0x80], 1).is_err());
    }

    #[test]
    fn malformed_streams_rejected() {
        let lengths = [2u32, 2, 2, 2];
        let code = canonical_code(&lengths).unwrap();
        let dec = CanonicalDecoder::from_lengths(&lengths).unwrap();
        let (bytes, bits) = code.encode(&[0, 1, 2, 3]).unwrap();
        assert!(dec.decode(&bytes, bits - 1).is_err()); // truncated
    }

    #[test]
    fn infeasible_lengths_rejected() {
        assert!(CanonicalDecoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(CanonicalDecoder::from_lengths(&[]).is_err());
        assert!(CanonicalDecoder::from_lengths(&[90]).is_err());
    }

    #[test]
    fn overlong_declared_length_is_err_not_panic() {
        let dec = CanonicalDecoder::from_lengths(&[2, 2, 2, 2]).unwrap();
        assert!(dec.decode(&[0xFF], 9).is_err());
        assert!(dec.decode(&[], 1).is_err());
        assert!(dec.decode(&[0xFF, 0xFF], u64::MAX).is_err());
    }

    #[test]
    fn garbage_bits_rejected_without_panic() {
        // Underfull code {00, 01}: streams reaching the unassigned
        // region (1…) never complete a codeword and must error out.
        let dec = CanonicalDecoder::from_lengths(&[2, 2]).unwrap();
        assert!(dec.decode(&[0xFF], 8).is_err());
        // Mid-symbol EOF after a valid prefix.
        assert!(dec.decode(&[0b0100_0000], 3).is_err());
    }
}
