//! Canonical prefix codes from code lengths.
//!
//! Any multiset of lengths satisfying Kraft's inequality admits a
//! *canonical* code: codewords assigned in numerically increasing order,
//! shorter lengths first — fully determined by the lengths alone, which
//! is how real systems (DEFLATE et al.) ship code tables. This is the
//! practical endpoint of Theorem 7.1: a canonical code *is* a monotone
//! leaf pattern realized as a tree.

use crate::prefix::PrefixCode;
use partree_core::{Error, Result};
use partree_trees::kraft::kraft_feasible;
use partree_trees::monotone::build_monotone;

/// Builds the canonical prefix code for the given per-symbol lengths.
///
/// Errors when the lengths violate Kraft's inequality or exceed 64 bits
/// (a practical transport bound, not a theoretical one).
pub fn canonical_code(lengths: &[u32]) -> Result<PrefixCode> {
    if lengths.is_empty() {
        return Err(Error::invalid("empty alphabet"));
    }
    if let Some(&l) = lengths.iter().find(|&&l| l > 64) {
        return Err(Error::invalid(format!(
            "codeword length {l} exceeds 64 bits"
        )));
    }
    if !kraft_feasible(lengths) {
        return Err(Error::InfeasiblePattern { trees_needed: None });
    }

    // Sort symbols by (length desc) — a monotone pattern — realize the
    // tree with the Theorem 7.1 construction, then re-tag.
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    order.sort_by(|&a, &b| lengths[b].cmp(&lengths[a]).then(a.cmp(&b)));
    let pattern: Vec<u32> = order.iter().map(|&s| lengths[s]).collect();
    let mut tree = build_monotone(&pattern)?;
    tree.map_tags(|sorted_idx| order[sorted_idx]);
    PrefixCode::from_tree(&tree, lengths.len())
}

/// The canonical first-code table: for each length `l`, the numeric
/// value of the first codeword of that length (the classic
/// `next_code[]` recurrence) — exposed for interoperability tests.
pub fn first_codes(lengths: &[u32]) -> Vec<u64> {
    let max = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut count = vec![0u64; max + 1];
    for &l in lengths {
        count[l as usize] += 1;
    }
    let mut first = vec![0u64; max + 1];
    let mut code = 0u64;
    for l in 1..=max {
        code = (code + count[l - 1]) << 1;
        first[l] = code;
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deflate_style_example() {
        // Lengths (3,3,3,3,3,2,4,4) — RFC 1951's worked example.
        let lengths = [3u32, 3, 3, 3, 3, 2, 4, 4];
        let code = canonical_code(&lengths).unwrap();
        assert_eq!(code.lengths(), lengths);
        // Our canonical convention is depth-first: the deepest codewords
        // occupy the numerically smallest region, so the unique length-2
        // symbol (5) gets the all-ones codeword "11" (DEFLATE uses the
        // mirrored convention; both are canonical — determined by the
        // lengths alone).
        assert_eq!(code.codeword(5).to_bit_string(), "11");
        // Symbols of equal length get consecutive codewords in symbol
        // order (ties in the deeper-first sort break by symbol index).
        let v = |s: usize| {
            let cw = code.codeword(s);
            (0..cw.len()).fold(0u64, |acc, k| (acc << 1) | u64::from(cw.bit(k)))
        };
        assert!(v(6) < v(7), "equal-length codewords ordered by symbol");
        assert!(v(0) < v(1) && v(1) < v(2));
    }

    #[test]
    fn roundtrip_with_canonical_code() {
        let lengths = [2u32, 2, 2, 3, 3];
        let code = canonical_code(&lengths).unwrap();
        let msg = vec![4, 0, 3, 2, 1, 0, 4];
        let (bytes, bits) = code.encode(&msg).unwrap();
        assert_eq!(code.decode(&bytes, bits).unwrap(), msg);
    }

    #[test]
    fn infeasible_lengths_rejected() {
        assert!(canonical_code(&[1, 1, 1]).is_err());
        assert!(canonical_code(&[]).is_err());
        assert!(canonical_code(&[70]).is_err());
    }

    #[test]
    fn underfull_lengths_accepted() {
        // Kraft < 1: tree has unary chains, still a valid prefix code.
        let code = canonical_code(&[3, 3]).unwrap();
        assert_eq!(code.lengths(), vec![3, 3]);
        let (bytes, bits) = code.encode(&[0, 1, 0]).unwrap();
        assert_eq!(code.decode(&bytes, bits).unwrap(), vec![0, 1, 0]);
    }

    #[test]
    fn single_symbol() {
        let code = canonical_code(&[0]).unwrap();
        assert_eq!(code.lengths(), vec![0]);
    }

    #[test]
    fn first_codes_recurrence() {
        // Lengths 2,3,3,3,3,3,4,4 → counts [0,0,1,5,2]:
        // first[2]=0, first[3]=(0+1)<<1=2, first[4]=(2+5)<<1=14.
        let f = first_codes(&[3, 3, 3, 3, 3, 2, 4, 4]);
        assert_eq!(f[2], 0);
        assert_eq!(f[3], 2);
        assert_eq!(f[4], 14);
    }
}
