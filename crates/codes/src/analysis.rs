//! Code-quality analysis: entropy, redundancy, Kraft slack.
//!
//! The quantities §1's discussion of optimal codes revolves around:
//! Shannon entropy lower-bounds every uniquely decipherable code
//! (Kraft/McMillan), Huffman achieves redundancy < 1 bit, Shannon–Fano
//! stays within 1 bit of Huffman (Claim 7.1). These helpers make those
//! statements measurable for any code.

use partree_core::{Error, Result};

/// Shannon entropy `−Σ pᵢ log₂ pᵢ` of a (non-negative, non-all-zero)
/// frequency vector, in bits per symbol.
pub fn entropy(weights: &[f64]) -> Result<f64> {
    let total: f64 = weights.iter().sum();
    if weights.is_empty() || total <= 0.0 {
        return Err(Error::invalid("entropy needs positive total weight"));
    }
    Ok(weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| {
            let p = w / total;
            -p * p.log2()
        })
        .sum())
}

/// Expected code length `Σ pᵢ lᵢ` in bits per symbol.
pub fn expected_length(weights: &[f64], lengths: &[u32]) -> Result<f64> {
    if weights.len() != lengths.len() {
        return Err(Error::invalid("weights/lengths size mismatch"));
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(Error::invalid("positive total weight required"));
    }
    Ok(weights
        .iter()
        .zip(lengths)
        .map(|(&w, &l)| w * f64::from(l))
        .sum::<f64>()
        / total)
}

/// Redundancy: expected length minus entropy (≥ 0 for prefix codes; < 1
/// for Huffman).
pub fn redundancy(weights: &[f64], lengths: &[u32]) -> Result<f64> {
    Ok(expected_length(weights, lengths)? - entropy(weights)?)
}

/// Kraft slack `1 − Σ 2^{-lᵢ}` (0 for complete codes; > 0 when the code
/// wastes codeword space — e.g. Shannon–Fano). Exact via the
/// `O(log n)`-bit arithmetic of [`partree_trees::kraft`], returned as
/// an `(is_complete, f64_estimate)` pair.
pub fn kraft_slack(lengths: &[u32]) -> (bool, f64) {
    let complete = partree_trees::kraft::kraft_complete(lengths);
    let est: f64 = 1.0
        - lengths
            .iter()
            .map(|&l| {
                if l < 1080 {
                    2f64.powi(-(l as i32))
                } else {
                    0.0
                }
            })
            .sum::<f64>();
    (complete, est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partree_core::gen;
    use partree_huffman::sequential::huffman_heap;

    #[test]
    fn entropy_known_values() {
        // Uniform over 8 symbols: exactly 3 bits.
        assert!((entropy(&[1.0; 8]).unwrap() - 3.0).abs() < 1e-12);
        // Degenerate: one symbol, zero entropy.
        assert_eq!(entropy(&[5.0]).unwrap(), 0.0);
        // (1/2, 1/4, 1/4): 1.5 bits.
        assert!((entropy(&[2.0, 1.0, 1.0]).unwrap() - 1.5).abs() < 1e-12);
        assert!(entropy(&[]).is_err());
        assert!(entropy(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn huffman_redundancy_below_one_bit() {
        for seed in 0..10 {
            let w = gen::zipf_weights(50, 1.1, seed);
            let h = huffman_heap(&w).unwrap();
            let r = redundancy(&w, &h.lengths).unwrap();
            assert!((0.0..1.0).contains(&r), "seed={seed}: redundancy {r}");
        }
    }

    #[test]
    fn dyadic_weights_have_zero_redundancy() {
        let w = [4.0, 2.0, 1.0, 1.0];
        let h = huffman_heap(&w).unwrap();
        assert!(redundancy(&w, &h.lengths).unwrap().abs() < 1e-12);
        let (complete, slack) = kraft_slack(&h.lengths);
        assert!(complete);
        assert!(slack.abs() < 1e-12);
    }

    #[test]
    fn shannon_fano_slack_positive_on_non_dyadic() {
        let w = gen::zipf_weights(20, 1.0, 1);
        let sf = crate::shannon_fano::shannon_fano(&w).unwrap();
        let (complete, slack) = kraft_slack(&sf.lengths);
        // Non-dyadic Zipf: SF wastes some codeword space.
        assert!(!complete);
        assert!(slack > 0.0);
        // But still a valid prefix code.
        assert!(slack < 1.0);
    }

    #[test]
    fn expected_length_validation() {
        assert!(expected_length(&[1.0], &[1, 2]).is_err());
        let el = expected_length(&[1.0, 3.0], &[2, 1]).unwrap();
        assert!((el - (2.0 * 0.25 + 1.0 * 0.75)).abs() < 1e-12);
    }
}
