//! Property tests for the tree substrate: Kraft arithmetic, the three
//! §7 builders, contraction invariants.

use partree_core::gen;
use partree_trees::bitonic::build_bitonic_forest;
use partree_trees::contract::{compress, is_chain, rake, rake_to_chain};
use partree_trees::euler::{depths_euler, subtree_sizes_euler};
use partree_trees::finger::build_general;
use partree_trees::kraft::{kraft_ceil_exact, kraft_feasible};
use partree_trees::monotone::build_monotone;
use partree_trees::pattern::{build_exact, is_bitonic};
use partree_trees::shape::is_left_justified;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact Kraft ceiling matches the f64 reference on small levels.
    #[test]
    fn kraft_matches_f64(levels in prop::collection::vec(0u32..14, 1..40)) {
        let f: f64 = levels.iter().map(|&l| 2f64.powi(-(l as i32))).sum();
        let (c, exact) = kraft_ceil_exact(&levels);
        prop_assert_eq!(c, f.ceil() as u64);
        prop_assert_eq!(exact, f.fract() == 0.0);
    }

    /// Every tree's own leaf pattern is feasible and rebuilds through
    /// every applicable builder.
    #[test]
    fn leaf_patterns_roundtrip(n in 1usize..80, seed in 0u64..10_000) {
        let p = gen::full_tree_pattern(n, seed);
        prop_assert!(kraft_feasible(&p));
        let t = build_exact(&p).unwrap();
        prop_assert_eq!(t.leaf_depths(), p.clone());
        let g = build_general(&p).unwrap();
        prop_assert_eq!(g.tree.leaf_depths(), p);
    }

    /// Bitonic forests: size == ⌈Kraft⌉ and leaves read back in order,
    /// for arbitrary bitonic patterns (feasible or not).
    #[test]
    fn bitonic_forest_invariants(
        up in prop::collection::vec(0u32..8, 0..12),
        down in prop::collection::vec(0u32..8, 1..12),
    ) {
        let mut p: Vec<u32> = up.clone();
        p.sort_unstable();
        let mut d = down.clone();
        d.sort_unstable_by(|a, b| b.cmp(a));
        // Keep bitonicity at the junction.
        if let (Some(&last_up), Some(&first_down)) = (p.last(), d.first()) {
            prop_assume!(last_up <= first_down || p.is_empty());
            let _ = last_up;
            let _ = first_down;
        }
        p.extend(d);
        prop_assume!(!p.is_empty() && is_bitonic(&p));
        let f = build_bitonic_forest(&p).unwrap();
        let (k, _) = kraft_ceil_exact(&p);
        prop_assert_eq!(f.len() as u64, k);
        let got: Vec<u32> = f.leaf_levels().iter().map(|&(l, _)| l).collect();
        prop_assert_eq!(got, p);
    }

    /// RAKE strictly shrinks multi-node trees, preserves validity, and
    /// left-justified trees stay left-justified (Proposition 2.1).
    #[test]
    fn rake_invariants(n in 2usize..60, seed in 0u64..10_000) {
        let p = gen::monotone_pattern(n, seed);
        let t = build_monotone(&p).unwrap();
        prop_assert!(is_left_justified(&t));
        let r = rake(&t);
        r.validate().unwrap();
        prop_assert!(r.reachable().len() < t.reachable().len());
        prop_assert!(is_left_justified(&r));
        let (rounds, chain) = rake_to_chain(&t);
        prop_assert!(is_chain(&chain));
        prop_assert!(rounds <= (n as f64).log2().floor() as usize + 1);
    }

    /// COMPRESS preserves the leaf multiset and validity.
    #[test]
    fn compress_preserves_leaves(n in 1usize..50, seed in 0u64..10_000) {
        let p = gen::full_tree_pattern(n, seed);
        let t = build_exact(&p).unwrap();
        let c = compress(&t);
        c.validate().unwrap();
        prop_assert_eq!(c.leaf_count(), t.leaf_count());
    }

    /// Euler-tour measurements equal sequential walks on arbitrary
    /// trees (including unary chains from underfull patterns).
    #[test]
    fn euler_measurements_match(levels in prop::collection::vec(0u32..6, 1..30)) {
        prop_assume!(build_exact(&levels).is_ok());
        let t = build_exact(&levels).unwrap();
        prop_assert_eq!(depths_euler(&t), t.depths());
        let sizes = subtree_sizes_euler(&t);
        prop_assert_eq!(sizes[t.root()], t.reachable().len());
    }
}
