//! The per-level layout engine behind Theorems 7.1 and 7.2.
//!
//! Both the monotone and the bitonic constructions reduce to the same
//! picture: lay the tree out level by level, where level `l` holds (from
//! left to right)
//!
//! ```text
//! [ leaves of the rising part ][ internal nodes ][ leaves of the falling part ]
//! ```
//!
//! and the internal block's size obeys the paper's RAKE-like reduction
//! `c_l = ⌈used_{l+1} / 2⌉`, `used_l = aL_l + c_l + aR_l`. Internal node
//! `t` of level `l` takes nodes `2t` and `2t+1` of level `l+1`'s layout
//! as children (a final odd node becomes a left-only child). Reading the
//! leaves in order yields exactly: rising-part leaves by increasing
//! level, then falling-part leaves by decreasing level — the bitonic
//! input pattern.
//!
//! Feasibility falls out of the same numbers: the forest produced has
//! `used_0 = ⌈Σ 2^{-l_i}⌉` trees (see [`crate::kraft`]), which is 1
//! exactly when Kraft's inequality holds — Lemmas 7.1 and 7.2.

use crate::arena::{Forest, Node, NONE};
use partree_core::{Error, Result};

/// Builds the minimal ordered forest realizing a *bitonic* sequence of
/// `(level, tag)` leaves (levels non-decreasing, then non-increasing).
/// The forest has `⌈Σ 2^{-l_i}⌉` trees; pass the result through
/// [`Forest::into_tree`] when a single tree is required.
pub fn build_layout(leaves: &[(u32, usize)]) -> Result<Forest> {
    if leaves.is_empty() {
        return Err(Error::invalid("empty pattern"));
    }
    crate::pattern::check_levels(&leaves.iter().map(|&(l, _)| l).collect::<Vec<_>>())?;

    // Split into the rising prefix and the falling suffix.
    let mut split = leaves.len();
    for i in 1..leaves.len() {
        if leaves[i].0 < leaves[i - 1].0 {
            split = i;
            break;
        }
    }
    let (rising, falling) = leaves.split_at(split);
    if falling.windows(2).any(|w| w[0].0 < w[1].0) {
        return Err(Error::invalid("pattern is not bitonic"));
    }

    let max_level = leaves.iter().map(|&(l, _)| l).max().expect("nonempty") as usize;

    // Per-level leaf tag lists (rising in order; falling in order).
    let mut left_tags: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    let mut right_tags: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for &(l, t) in rising {
        left_tags[l as usize].push(t);
    }
    for &(l, t) in falling {
        right_tags[l as usize].push(t);
    }

    // Bottom-up sizes: c[l] internal, used[l] total at level l.
    let mut internal = vec![0usize; max_level + 1];
    let mut used = vec![0usize; max_level + 1];
    used[max_level] = left_tags[max_level].len() + right_tags[max_level].len();
    for l in (0..max_level).rev() {
        internal[l] = used[l + 1].div_ceil(2);
        used[l] = left_tags[l].len() + internal[l] + right_tags[l].len();
    }

    // Allocate nodes level by level; remember each level's layout order.
    let total: usize = used.iter().sum();
    let mut nodes: Vec<Node> = Vec::with_capacity(total);
    let mut layout: Vec<Vec<usize>> = Vec::with_capacity(max_level + 1);
    for l in 0..=max_level {
        let mut row = Vec::with_capacity(used[l]);
        for &t in &left_tags[l] {
            row.push(push_node(&mut nodes, Some(t)));
        }
        for _ in 0..internal[l] {
            row.push(push_node(&mut nodes, None));
        }
        for &t in &right_tags[l] {
            row.push(push_node(&mut nodes, Some(t)));
        }
        layout.push(row);
    }

    // Link internal node t of level l to children 2t, 2t+1 of level l+1.
    for l in 0..max_level {
        let first_internal = left_tags[l].len();
        for t in 0..internal[l] {
            let parent = layout[l][first_internal + t];
            let below = &layout[l + 1];
            let left = below[2 * t];
            nodes[parent].left = left;
            nodes[left].parent = parent;
            if 2 * t + 1 < below.len() {
                let right = below[2 * t + 1];
                nodes[parent].right = right;
                nodes[right].parent = parent;
            }
        }
    }

    Forest::from_parts(nodes, layout[0].clone())
}

fn push_node(nodes: &mut Vec<Node>, tag: Option<usize>) -> usize {
    nodes.push(Node {
        parent: NONE,
        left: NONE,
        right: NONE,
        tag,
    });
    nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kraft::minimal_forest_size;

    fn tagged(levels: &[u32]) -> Vec<(u32, usize)> {
        levels.iter().enumerate().map(|(i, &l)| (l, i)).collect()
    }

    fn check_roundtrip(levels: &[u32]) {
        let f = build_layout(&tagged(levels)).expect("bitonic feasible input");
        assert_eq!(
            f.len() as u64,
            minimal_forest_size(levels),
            "forest size for {levels:?}"
        );
        let got = f.leaf_levels();
        let want: Vec<(u32, Option<usize>)> = levels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, Some(i)))
            .collect();
        assert_eq!(got, want, "leaf levels for {levels:?}");
    }

    #[test]
    fn single_leaf() {
        check_roundtrip(&[0]);
        check_roundtrip(&[3]);
    }

    #[test]
    fn complete_balanced_patterns() {
        check_roundtrip(&[2, 2, 2, 2]);
        check_roundtrip(&[3; 8]);
        check_roundtrip(&[1, 2, 2]);
        check_roundtrip(&[2, 2, 1]);
    }

    #[test]
    fn monotone_decreasing_patterns() {
        check_roundtrip(&[4, 4, 3, 2, 1]);
        check_roundtrip(&[5, 5, 5, 5, 2, 1]);
    }

    #[test]
    fn monotone_increasing_patterns() {
        check_roundtrip(&[1, 2, 3, 4, 4]);
        check_roundtrip(&[1, 2, 2, 3, 3]);
    }

    #[test]
    fn proper_bitonic_patterns() {
        check_roundtrip(&[1, 3, 3, 2]);
        check_roundtrip(&[2, 4, 4, 4, 4, 3, 2, 2]);
        check_roundtrip(&[1, 2, 3, 3, 2, 1]); // kraft 2 → forest of 2? see below
    }

    #[test]
    fn gap_levels_materialize_chains() {
        // One leaf at level 4 and one at level 1: chains across the gap.
        let f = build_layout(&tagged(&[4, 1])).unwrap();
        assert_eq!(f.len(), 1);
        let t = f.into_tree().unwrap();
        t.validate().unwrap();
        assert_eq!(t.leaf_depths(), vec![4, 1]);
    }

    #[test]
    fn forest_when_kraft_exceeds_one() {
        let f = build_layout(&tagged(&[1, 1, 1])).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(
            f.leaf_levels(),
            vec![(1, Some(0)), (1, Some(1)), (1, Some(2))]
        );
    }

    #[test]
    fn random_generated_bitonic_patterns() {
        for seed in 0..20 {
            let p = partree_core::gen::bitonic_pattern(33, seed);
            check_roundtrip(&p);
        }
        for seed in 0..20 {
            let p = partree_core::gen::monotone_pattern(25, seed);
            check_roundtrip(&p);
        }
    }

    #[test]
    fn non_bitonic_rejected() {
        assert!(build_layout(&tagged(&[2, 1, 2])).is_err());
        assert!(build_layout(&[]).is_err());
    }

    #[test]
    fn forest_trees_all_validate() {
        let f = build_layout(&tagged(&[3, 3, 3, 3, 3])).unwrap();
        f.validate().unwrap();
        assert_eq!(f.len() as u64, minimal_forest_size(&[3; 5]));
    }
}
