//! Euler-tour tree computations on the PRAM substrate.
//!
//! The Tarjan–Vishkin Euler-tour technique is the EREW workhorse behind
//! tree measurements in the paper's model: linearize the tree into the
//! closed walk that traverses every edge once down and once up, then a
//! single (weighted) list-ranking pass answers global questions —
//! depths (weight `+1` down, `−1` up), subtree sizes (tour-position
//! arithmetic), traversal numbering. This module builds the tour from
//! an arena [`Tree`] and computes node depths and subtree leaf counts
//! through [`partree_pram::rank::list_rank_weighted`], cross-checked
//! against the sequential arena walks.

use crate::arena::{Tree, NONE};
use partree_pram::rank::{list_rank, list_rank_weighted, NIL};

/// One directed tour edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TourEdge {
    /// The node entered (down edges) or left (up edges).
    pub node: usize,
    /// `true` for parent→child (descending) edges.
    pub down: bool,
}

/// The Euler tour of the tree as a sequence of directed edges (empty
/// for a single-node tree), plus the successor array representing it as
/// a linked list (the input shape the PRAM primitives consume).
pub struct EulerTour {
    /// Tour edges in walk order.
    pub edges: Vec<TourEdge>,
    /// `next[k]` = index of the edge after edge `k`, or [`NIL`].
    pub next: Vec<usize>,
}

/// Builds the Euler tour by a sequential walk (`O(n)`); on a PRAM the
/// tour's successor array is assembled in `O(1)` from adjacency lists —
/// building it is not the interesting part, *ranking* it is.
pub fn euler_tour(tree: &Tree) -> EulerTour {
    let mut edges = Vec::new();
    // (node, phase): phase 0 = descend left, 1 = descend right, 2 = leave.
    let mut stack = vec![(tree.root(), 0u8)];
    while let Some((v, phase)) = stack.pop() {
        let n = &tree.nodes()[v];
        match phase {
            0 => {
                stack.push((v, 1));
                if n.left != NONE {
                    edges.push(TourEdge {
                        node: n.left,
                        down: true,
                    });
                    stack.push((n.left, 0));
                }
            }
            1 => {
                stack.push((v, 2));
                if n.right != NONE {
                    edges.push(TourEdge {
                        node: n.right,
                        down: true,
                    });
                    stack.push((n.right, 0));
                }
            }
            _ => {
                if v != tree.root() {
                    edges.push(TourEdge {
                        node: v,
                        down: false,
                    });
                }
            }
        }
    }
    let m = edges.len();
    let next: Vec<usize> = (0..m)
        .map(|k| if k + 1 < m { k + 1 } else { NIL })
        .collect();
    EulerTour { edges, next }
}

/// Node depths via weighted list ranking over the tour (`+1` on down
/// edges, `−1` on up edges): `depth(v)` is the prefix sum at `v`'s
/// entering edge. Returns depths indexed by arena slot (`u32::MAX` for
/// unreachable slots), bit-identical to [`Tree::depths`].
pub fn depths_euler(tree: &Tree) -> Vec<u32> {
    let tour = euler_tour(tree);
    let mut out = vec![u32::MAX; tree.nodes().len()];
    out[tree.root()] = 0;
    if tour.edges.is_empty() {
        return out;
    }
    let weights: Vec<i64> = tour
        .edges
        .iter()
        .map(|e| if e.down { 1 } else { -1 })
        .collect();
    // suffix[k] = Σ weights[k..]; prefix through k = total − suffix[k] + w[k].
    let suffix = list_rank_weighted(&tour.next, &weights);
    let total = suffix[0];
    for (k, e) in tour.edges.iter().enumerate() {
        if e.down {
            let prefix_inclusive = total - suffix[k] + weights[k];
            out[e.node] = u32::try_from(prefix_inclusive).expect("depths are non-negative");
        }
    }
    out
}

/// Subtree sizes (node counts) via tour positions: a subtree's edges
/// occupy the contiguous tour interval between its entering and leaving
/// edges, and a subtree with `s` nodes contributes `2(s − 1)` edges
/// strictly inside that interval. Positions come from (unweighted) list
/// ranking. Indexed by arena slot; `0` for unreachable slots.
pub fn subtree_sizes_euler(tree: &Tree) -> Vec<usize> {
    let tour = euler_tour(tree);
    let n_slots = tree.nodes().len();
    let mut sizes = vec![0usize; n_slots];
    let m = tour.edges.len();
    if m == 0 {
        sizes[tree.root()] = 1;
        return sizes;
    }
    // position k = m − 1 − rank[k] (rank = distance to the tail).
    let rank = list_rank(&tour.next);
    let mut enter = vec![usize::MAX; n_slots];
    let mut leave = vec![usize::MAX; n_slots];
    for (k, e) in tour.edges.iter().enumerate() {
        let pos = m - 1 - rank[k] as usize;
        if e.down {
            enter[e.node] = pos;
        } else {
            leave[e.node] = pos;
        }
    }
    for v in tree.reachable() {
        if v == tree.root() {
            sizes[v] = (m + 2) / 2; // all m = 2(n−1) edges ⇒ n nodes
        } else {
            let span = leave[v] - enter[v]; // edges strictly inside + 1
            sizes[v] = span / 2 + 1;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::TreeBuilder;
    use crate::monotone::build_monotone;
    use crate::pattern::build_exact;

    fn sizes_sequential(tree: &Tree) -> Vec<usize> {
        fn rec(tree: &Tree, v: usize, out: &mut [usize]) -> usize {
            let n = &tree.nodes()[v];
            let mut s = 1;
            if n.left != NONE {
                s += rec(tree, n.left, out);
            }
            if n.right != NONE {
                s += rec(tree, n.right, out);
            }
            out[v] = s;
            s
        }
        let mut out = vec![0; tree.nodes().len()];
        rec(tree, tree.root(), &mut out);
        out
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::leaf(Some(0));
        assert!(euler_tour(&t).edges.is_empty());
        assert_eq!(depths_euler(&t)[t.root()], 0);
        assert_eq!(subtree_sizes_euler(&t)[t.root()], 1);
    }

    #[test]
    fn small_tree_tour_shape() {
        let mut b = TreeBuilder::new();
        let x = b.leaf(Some(0));
        let y = b.leaf(Some(1));
        let r = b.internal(x, Some(y));
        let t = b.build(r).unwrap();
        let tour = euler_tour(&t);
        assert_eq!(tour.edges.len(), 4); // 2 edges, down+up each
        assert_eq!(
            tour.edges,
            vec![
                TourEdge {
                    node: x,
                    down: true
                },
                TourEdge {
                    node: x,
                    down: false
                },
                TourEdge {
                    node: y,
                    down: true
                },
                TourEdge {
                    node: y,
                    down: false
                },
            ]
        );
    }

    #[test]
    fn depths_match_sequential_walk() {
        for seed in 0..10 {
            let p = partree_core::gen::full_tree_pattern(60, seed);
            let t = build_exact(&p).unwrap();
            assert_eq!(depths_euler(&t), t.depths(), "seed={seed}");
        }
    }

    #[test]
    fn depths_on_unary_chains() {
        let t = build_exact(&[5]).unwrap(); // a depth-5 unary chain
        assert_eq!(depths_euler(&t), t.depths());
    }

    #[test]
    fn sizes_match_sequential_walk() {
        for seed in 0..10 {
            let p = partree_core::gen::monotone_pattern(50, seed);
            let t = build_monotone(&p).unwrap();
            assert_eq!(subtree_sizes_euler(&t), sizes_sequential(&t), "seed={seed}");
        }
    }

    #[test]
    fn larger_tree_consistency() {
        let p = partree_core::gen::full_tree_pattern(5000, 3);
        let t = build_exact(&p).unwrap();
        assert_eq!(depths_euler(&t), t.depths());
        let sizes = subtree_sizes_euler(&t);
        assert_eq!(sizes[t.root()], t.reachable().len());
    }
}
