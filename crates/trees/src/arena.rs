//! Ordered binary trees in index arenas.
//!
//! Every tree-producing algorithm in this workspace returns a [`Tree`]:
//! nodes live in a flat `Vec`, children are ordered (`left`, `right`),
//! a node with a single child keeps it on the left (the paper's
//! left-justified convention for unary nodes), and leaves may carry a
//! `tag` — the index of the symbol / key / virtual leaf they stand for.

use partree_core::{Error, Result};

/// Sentinel for "no node".
pub const NONE: usize = usize::MAX;

/// One arena node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Node {
    /// Parent index, or [`NONE`] for a root.
    pub parent: usize,
    /// Left child, or [`NONE`].
    pub left: usize,
    /// Right child, or [`NONE`].
    pub right: usize,
    /// Leaf payload (symbol index); `None` on internal nodes.
    pub tag: Option<usize>,
}

impl Node {
    fn leaf(tag: Option<usize>) -> Node {
        Node {
            parent: NONE,
            left: NONE,
            right: NONE,
            tag,
        }
    }

    /// `true` iff the node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == NONE && self.right == NONE
    }
}

/// An ordered forest: an arena plus its roots in left-to-right order.
#[derive(Clone, Debug)]
pub struct Forest {
    nodes: Vec<Node>,
    roots: Vec<usize>,
}

/// An ordered binary tree (a [`Forest`] with exactly one root).
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<Node>,
    root: usize,
}

impl Forest {
    /// Creates a forest from raw parts; validates structure.
    pub fn from_parts(nodes: Vec<Node>, roots: Vec<usize>) -> Result<Forest> {
        let f = Forest { nodes, roots };
        f.validate()?;
        Ok(f)
    }

    /// The roots, left to right.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The arena.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// `true` iff there are no trees.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Converts into a [`Tree`]; errors (reporting the forest size) when
    /// there is not exactly one root.
    pub fn into_tree(self) -> Result<Tree> {
        if self.roots.len() == 1 {
            Ok(Tree {
                root: self.roots[0],
                nodes: self.nodes,
            })
        } else {
            Err(Error::InfeasiblePattern {
                trees_needed: Some(self.roots.len()),
            })
        }
    }

    /// Splits the forest into standalone trees (copying each root's
    /// reachable subgraph into its own arena), in root order.
    pub fn split(&self) -> Vec<Tree> {
        self.roots
            .iter()
            .map(|&r| {
                let mut nodes = Vec::new();
                let root = copy_subtree(&self.nodes, r, NONE, &mut nodes);
                Tree { nodes, root }
            })
            .collect()
    }

    /// Leaf `(depth, tag)` pairs in left-to-right reading order across
    /// all trees (roots at depth 0).
    pub fn leaf_levels(&self) -> Vec<(u32, Option<usize>)> {
        let mut out = Vec::new();
        for &r in &self.roots {
            collect_leaves(&self.nodes, r, 0, &mut out);
        }
        out
    }

    /// Structural validation: parent/child pointers consistent, no
    /// sharing, every node reachable from exactly one root, single
    /// children stored on the left.
    pub fn validate(&self) -> Result<()> {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        for &r in &self.roots {
            if r >= n {
                return Err(Error::Internal(format!("root {r} out of bounds")));
            }
            if self.nodes[r].parent != NONE {
                return Err(Error::Internal(format!("root {r} has a parent")));
            }
            let mut stack = vec![r];
            while let Some(v) = stack.pop() {
                if seen[v] {
                    return Err(Error::Internal(format!("node {v} reached twice")));
                }
                seen[v] = true;
                let node = &self.nodes[v];
                if node.left == NONE && node.right != NONE {
                    return Err(Error::Internal(format!(
                        "node {v} has a right child but no left child"
                    )));
                }
                if node.tag.is_some() && !node.is_leaf() {
                    return Err(Error::Internal(format!("internal node {v} carries a tag")));
                }
                for c in [node.left, node.right] {
                    if c != NONE {
                        if c >= n {
                            return Err(Error::Internal(format!("child {c} out of bounds")));
                        }
                        if self.nodes[c].parent != v {
                            return Err(Error::Internal(format!(
                                "child {c} of {v} has wrong parent pointer"
                            )));
                        }
                        stack.push(c);
                    }
                }
            }
        }
        // Unreached nodes are allowed (grafting leaves tombstones) as
        // long as nothing reachable points at them — already checked.
        Ok(())
    }
}

/// Copies the subtree rooted at `src` into `out`, returning the new root
/// index. Iterative to tolerate deep unary chains.
fn copy_subtree(src_nodes: &[Node], src: usize, parent: usize, out: &mut Vec<Node>) -> usize {
    let root_new = out.len();
    // (src id, new parent id, as-left?)
    let mut stack = vec![(src, parent, true)];
    while let Some((s, p, as_left)) = stack.pop() {
        let id = out.len();
        let n = &src_nodes[s];
        out.push(Node {
            parent: p,
            left: NONE,
            right: NONE,
            tag: n.tag,
        });
        if p != NONE {
            if as_left {
                out[p].left = id;
            } else {
                out[p].right = id;
            }
        }
        // Push right first so left is materialized next (preorder).
        if n.right != NONE {
            stack.push((n.right, id, false));
        }
        if n.left != NONE {
            stack.push((n.left, id, true));
        }
    }
    root_new
}

/// Iterative (deep chains must not overflow the call stack).
fn collect_leaves(nodes: &[Node], v: usize, depth: u32, out: &mut Vec<(u32, Option<usize>)>) {
    let mut stack = vec![(v, depth)];
    while let Some((v, d)) = stack.pop() {
        let node = &nodes[v];
        if node.is_leaf() {
            out.push((d, node.tag));
            continue;
        }
        // Right first so the left subtree is emitted first (LIFO).
        if node.right != NONE {
            stack.push((node.right, d + 1));
        }
        if node.left != NONE {
            stack.push((node.left, d + 1));
        }
    }
}

impl Tree {
    /// A single-leaf tree.
    pub fn leaf(tag: Option<usize>) -> Tree {
        Tree {
            nodes: vec![Node::leaf(tag)],
            root: 0,
        }
    }

    /// Creates a tree from raw parts; validates structure.
    pub fn from_parts(nodes: Vec<Node>, root: usize) -> Result<Tree> {
        Forest::from_parts(nodes, vec![root])?.into_tree()
    }

    /// The root index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The arena.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of arena slots (including grafting tombstones).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf `(depth, tag)` pairs in left-to-right order.
    pub fn leaf_levels(&self) -> Vec<(u32, Option<usize>)> {
        let mut out = Vec::new();
        collect_leaves(&self.nodes, self.root, 0, &mut out);
        out
    }

    /// Leaf depths only, left to right — the pattern this tree realizes.
    pub fn leaf_depths(&self) -> Vec<u32> {
        self.leaf_levels().into_iter().map(|(d, _)| d).collect()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.reachable()
            .into_iter()
            .filter(|&v| self.nodes[v].is_leaf())
            .count()
    }

    /// Height (longest root→leaf edge count); a single leaf has height 0.
    pub fn height(&self) -> u32 {
        self.height_of(self.root)
    }

    /// Height of the subtree rooted at `v` (iterative — safe on deep
    /// chains).
    pub fn height_of(&self, v: usize) -> u32 {
        let mut best = 0;
        let mut stack = vec![(v, 0u32)];
        while let Some((v, d)) = stack.pop() {
            let node = &self.nodes[v];
            if node.is_leaf() {
                best = best.max(d);
            }
            if node.left != NONE {
                stack.push((node.left, d + 1));
            }
            if node.right != NONE {
                stack.push((node.right, d + 1));
            }
        }
        best
    }

    /// `true` iff every internal node has exactly two children.
    pub fn is_full(&self) -> bool {
        self.reachable().iter().all(|&v| {
            let n = &self.nodes[v];
            n.is_leaf() || (n.left != NONE && n.right != NONE)
        })
    }

    /// Depth of each reachable node (indexed by arena slot; unreachable
    /// slots get `u32::MAX`).
    pub fn depths(&self) -> Vec<u32> {
        let mut d = vec![u32::MAX; self.nodes.len()];
        let mut stack = vec![(self.root, 0u32)];
        while let Some((v, dv)) = stack.pop() {
            d[v] = dv;
            let n = &self.nodes[v];
            if n.left != NONE {
                stack.push((n.left, dv + 1));
            }
            if n.right != NONE {
                stack.push((n.right, dv + 1));
            }
        }
        d
    }

    /// Indices of reachable nodes (preorder).
    pub fn reachable(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            out.push(v);
            let n = &self.nodes[v];
            if n.right != NONE {
                stack.push(n.right);
            }
            if n.left != NONE {
                stack.push(n.left);
            }
        }
        out
    }

    /// Validation (see [`Forest::validate`]).
    pub fn validate(&self) -> Result<()> {
        Forest {
            nodes: self.nodes.clone(),
            roots: vec![self.root],
        }
        .validate()
    }

    /// Replaces the leaf carrying `tag` with the whole tree `sub`
    /// (the expansion step of Finger-Reduction and of the OBST
    /// run-collapse). The grafted subtree keeps its own tags. Errors if
    /// no leaf carries `tag`.
    pub fn graft(&mut self, tag: usize, sub: &Tree) -> Result<()> {
        let slot = self
            .reachable()
            .into_iter()
            .find(|&v| self.nodes[v].is_leaf() && self.nodes[v].tag == Some(tag))
            .ok_or_else(|| Error::Internal(format!("no leaf tagged {tag} to graft onto")))?;

        let offset = self.nodes.len();
        for node in &sub.nodes {
            let mut n = *node;
            for link in [&mut n.parent, &mut n.left, &mut n.right] {
                if *link != NONE {
                    *link += offset;
                }
            }
            self.nodes.push(n);
        }
        let sub_root = sub.root + offset;
        // Splice: the grafted root takes the slot's place.
        let parent = self.nodes[slot].parent;
        self.nodes[sub_root].parent = parent;
        if parent == NONE {
            self.root = sub_root;
        } else if self.nodes[parent].left == slot {
            self.nodes[parent].left = sub_root;
        } else {
            self.nodes[parent].right = sub_root;
        }
        // The old leaf becomes an unreachable tombstone.
        self.nodes[slot].parent = NONE;
        Ok(())
    }

    /// Rewrites every leaf tag through `f` (e.g. to undo a sorting
    /// permutation after an algorithm that required sorted input).
    pub fn map_tags(&mut self, f: impl Fn(usize) -> usize) {
        for node in &mut self.nodes {
            if let Some(t) = node.tag {
                node.tag = Some(f(t));
            }
        }
    }

    /// ASCII rendering (for examples and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_rec(self.root, "", "", &mut out);
        out
    }

    fn render_rec(&self, v: usize, prefix: &str, branch: &str, out: &mut String) {
        let node = &self.nodes[v];
        out.push_str(prefix);
        out.push_str(branch);
        if node.is_leaf() {
            match node.tag {
                Some(t) => out.push_str(&format!("leaf #{t}\n")),
                None => out.push_str("leaf\n"),
            }
        } else {
            out.push_str("•\n");
            let child_prefix = format!(
                "{prefix}{}",
                if branch.is_empty() {
                    ""
                } else if branch.starts_with("├") {
                    "│ "
                } else {
                    "  "
                }
            );
            let kids: Vec<usize> = [node.left, node.right]
                .into_iter()
                .filter(|&c| c != NONE)
                .collect();
            for (idx, &c) in kids.iter().enumerate() {
                let b = if idx + 1 < kids.len() {
                    "├─"
                } else {
                    "└─"
                };
                self.render_rec(c, &child_prefix, b, out);
            }
        }
    }
}

/// Convenience builder for hand-assembled trees in tests and algorithms.
#[derive(Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> TreeBuilder {
        TreeBuilder::default()
    }

    /// Adds a leaf; returns its index.
    pub fn leaf(&mut self, tag: Option<usize>) -> usize {
        self.nodes.push(Node::leaf(tag));
        self.nodes.len() - 1
    }

    /// Adds an internal node over `left` and (optionally) `right`;
    /// returns its index.
    pub fn internal(&mut self, left: usize, right: Option<usize>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            parent: NONE,
            left,
            right: right.unwrap_or(NONE),
            tag: None,
        });
        self.nodes[left].parent = id;
        if let Some(r) = right {
            self.nodes[r].parent = id;
        }
        id
    }

    /// Finishes the tree rooted at `root`.
    pub fn build(self, root: usize) -> Result<Tree> {
        Tree::from_parts(self.nodes, root)
    }

    /// Finishes a forest with the given roots (left to right).
    pub fn build_forest(self, roots: Vec<usize>) -> Result<Forest> {
        Forest::from_parts(self.nodes, roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ((a b) c) with tags 0,1,2.
    fn small_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let a = b.leaf(Some(0));
        let bb = b.leaf(Some(1));
        let c = b.leaf(Some(2));
        let ab = b.internal(a, Some(bb));
        let root = b.internal(ab, Some(c));
        b.build(root).unwrap()
    }

    #[test]
    fn leaf_levels_in_order() {
        let t = small_tree();
        assert_eq!(
            t.leaf_levels(),
            vec![(2, Some(0)), (2, Some(1)), (1, Some(2))]
        );
        assert_eq!(t.leaf_depths(), vec![2, 2, 1]);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.height(), 2);
        assert!(t.is_full());
    }

    #[test]
    fn single_leaf_tree() {
        let t = Tree::leaf(Some(7));
        assert_eq!(t.leaf_depths(), vec![0]);
        assert_eq!(t.height(), 0);
        assert!(t.is_full());
        t.validate().unwrap();
    }

    #[test]
    fn unary_chain_allowed_on_left() {
        let mut b = TreeBuilder::new();
        let l = b.leaf(Some(0));
        let mid = b.internal(l, None);
        let root = b.internal(mid, None);
        let t = b.build(root).unwrap();
        assert_eq!(t.leaf_depths(), vec![2]);
        assert!(!t.is_full());
    }

    #[test]
    fn right_only_child_rejected() {
        let nodes = vec![
            Node {
                parent: NONE,
                left: NONE,
                right: 1,
                tag: None,
            },
            Node {
                parent: 0,
                left: NONE,
                right: NONE,
                tag: None,
            },
        ];
        assert!(Tree::from_parts(nodes, 0).is_err());
    }

    #[test]
    fn tagged_internal_rejected() {
        let nodes = vec![
            Node {
                parent: NONE,
                left: 1,
                right: NONE,
                tag: Some(3),
            },
            Node {
                parent: 0,
                left: NONE,
                right: NONE,
                tag: None,
            },
        ];
        assert!(Tree::from_parts(nodes, 0).is_err());
    }

    #[test]
    fn bad_parent_pointer_rejected() {
        let nodes = vec![
            Node {
                parent: NONE,
                left: 1,
                right: NONE,
                tag: None,
            },
            Node {
                parent: NONE,
                left: NONE,
                right: NONE,
                tag: None,
            },
        ];
        assert!(Tree::from_parts(nodes, 0).is_err());
    }

    #[test]
    fn forest_into_tree_requires_single_root() {
        let mut b = TreeBuilder::new();
        let x = b.leaf(Some(0));
        let y = b.leaf(Some(1));
        let f = b.build_forest(vec![x, y]).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.leaf_levels(), vec![(0, Some(0)), (0, Some(1))]);
        match f.into_tree() {
            Err(Error::InfeasiblePattern {
                trees_needed: Some(2),
            }) => {}
            other => panic!("expected InfeasiblePattern(2), got {other:?}"),
        }
    }

    #[test]
    fn graft_replaces_tagged_leaf() {
        let mut t = small_tree();
        let sub = {
            let mut b = TreeBuilder::new();
            let x = b.leaf(Some(10));
            let y = b.leaf(Some(11));
            let r = b.internal(x, Some(y));
            b.build(r).unwrap()
        };
        t.graft(1, &sub).unwrap();
        t.validate().unwrap();
        assert_eq!(
            t.leaf_levels(),
            vec![(2, Some(0)), (3, Some(10)), (3, Some(11)), (1, Some(2))]
        );
    }

    #[test]
    fn graft_at_root() {
        let mut t = Tree::leaf(Some(0));
        let sub = small_tree();
        t.graft(0, &sub).unwrap();
        t.validate().unwrap();
        assert_eq!(t.leaf_depths(), vec![2, 2, 1]);
    }

    #[test]
    fn graft_missing_tag_errors() {
        let mut t = small_tree();
        assert!(t.graft(99, &Tree::leaf(None)).is_err());
    }

    #[test]
    fn render_contains_leaves() {
        let s = small_tree().render();
        assert!(s.contains("leaf #0"));
        assert!(s.contains("leaf #2"));
    }

    #[test]
    fn depths_and_reachable() {
        let t = small_tree();
        let d = t.depths();
        assert_eq!(d[t.root()], 0);
        assert_eq!(t.reachable().len(), 5);
    }
}
