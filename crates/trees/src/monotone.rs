//! Theorem 7.1 — trees from monotone leaf patterns.
//!
//! "Trees with monotone leaf patterns can be constructed in `O(log n)`
//! time, using `n/log n` processors on an EREW PRAM."
//!
//! The algorithm: convert the (sorted) pattern to a level histogram,
//! apply the RAKE-like reduction `a'_{l-1} = ⌈a_l / 2⌉ + a_{l-1}` until
//! the root, and materialize nodes level by level (carries = internal
//! nodes). Feasibility is Kraft's inequality (Lemma 7.1), evaluated with
//! `O(log n)`-bit arithmetic — see [`crate::kraft`].
//!
//! On the multicore substitution the histogram is a parallel run-length
//! computation and the node materialization is data-parallel per level;
//! the `O(#levels)` carry recurrence is the sequential spine the paper
//! parallelizes with prefix sums (its work is negligible — `O(log n)`
//! values of `O(log n)` bits).

use crate::arena::{Forest, Tree};
use crate::level_build::build_layout;
use crate::pattern::is_monotone;
use partree_core::{Error, Result};

/// Builds the tree realizing a monotone (non-increasing or
/// non-decreasing) pattern; leaves are tagged `0 … n-1` left to right.
///
/// ```
/// use partree_trees::monotone::build_monotone;
///
/// let tree = build_monotone(&[3, 3, 2, 1])?;
/// assert_eq!(tree.leaf_depths(), vec![3, 3, 2, 1]);
/// assert!(build_monotone(&[1, 1, 1]).is_err());   // Kraft sum 3/2 > 1
/// # Ok::<(), partree_core::Error>(())
/// ```
///
/// Errors with [`Error::InfeasiblePattern`] (carrying the minimal forest
/// size) when the Kraft sum exceeds 1, and with
/// [`Error::InvalidInput`] when the pattern is not monotone.
pub fn build_monotone(levels: &[u32]) -> Result<Tree> {
    build_monotone_forest(levels)?.into_tree()
}

/// Forest variant (Theorem 7.2's "minimum number of trees"): always
/// succeeds on monotone input, producing `⌈Σ 2^{-l_i}⌉` trees.
pub fn build_monotone_forest(levels: &[u32]) -> Result<Forest> {
    if !is_monotone(levels) {
        return Err(Error::invalid("pattern is not monotone"));
    }
    let tagged: Vec<(u32, usize)> = levels.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    build_layout(&tagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kraft::{kraft_feasible, minimal_forest_size};
    use crate::pattern::build_exact;

    #[test]
    fn realizes_generated_monotone_patterns() {
        for seed in 0..30 {
            let p = partree_core::gen::monotone_pattern(64, seed);
            let t = build_monotone(&p).expect("generated patterns are feasible");
            t.validate().unwrap();
            assert_eq!(t.leaf_depths(), p, "seed={seed}");
        }
    }

    #[test]
    fn increasing_orientation() {
        let p = vec![1, 2, 3, 4, 4];
        let t = build_monotone(&p).unwrap();
        assert_eq!(t.leaf_depths(), p);
    }

    #[test]
    fn kraft_iff_feasible_lemma_7_1() {
        // Exhaustive: all monotone non-increasing patterns of length ≤ 6
        // with levels ≤ 4. Feasible ⇔ Kraft ≤ 1 ⇔ builder succeeds, and
        // the sequential baseline agrees.
        fn patterns(n: usize, max: u32) -> Vec<Vec<u32>> {
            let mut out = vec![vec![]];
            for _ in 0..n {
                out = out
                    .into_iter()
                    .flat_map(|p: Vec<u32>| {
                        let hi = p.last().copied().unwrap_or(max);
                        (0..=hi).map(move |l| {
                            let mut q = p.clone();
                            q.push(l);
                            q
                        })
                    })
                    .collect();
            }
            out
        }
        for p in patterns(5, 4) {
            let ours = build_monotone(&p);
            let kraft = kraft_feasible(&p);
            let baseline = build_exact(&p);
            assert_eq!(ours.is_ok(), kraft, "pattern {p:?}");
            assert_eq!(baseline.is_ok(), kraft, "baseline disagrees on {p:?}");
            if let Ok(t) = ours {
                assert_eq!(t.leaf_depths(), p);
            }
        }
    }

    #[test]
    fn infeasible_reports_forest_size() {
        match build_monotone(&[1, 1, 1, 1]) {
            Err(Error::InfeasiblePattern {
                trees_needed: Some(2),
            }) => {}
            other => panic!("expected forest size 2, got {other:?}"),
        }
        let f = build_monotone_forest(&[1, 1, 1, 1]).unwrap();
        assert_eq!(f.len() as u64, minimal_forest_size(&[1, 1, 1, 1]));
    }

    #[test]
    fn non_monotone_rejected() {
        assert!(build_monotone(&[1, 3, 2]).is_err());
    }

    #[test]
    fn large_pattern_round_trip() {
        let p = partree_core::gen::monotone_pattern(20_000, 7);
        let t = build_monotone(&p).unwrap();
        assert_eq!(t.leaf_count(), 20_000);
        assert_eq!(t.leaf_depths(), p);
    }

    #[test]
    fn deep_chain_pattern() {
        // (n, n-1, …, 1): the degenerate left-spine shape.
        let p: Vec<u32> = (1..=40).rev().collect();
        let t = build_monotone(&p).unwrap();
        assert_eq!(t.leaf_depths(), p);
        assert_eq!(t.height(), 40);
    }
}
