//! RAKE and COMPRESS — parallel tree contraction (§2–3).
//!
//! RAKE removes leaves; COMPRESS halves unary chains by splicing out
//! every other chain node (pointer doubling). The paper's structural
//! facts reproduced here:
//!
//! * **Proposition 2.1** — left-justified trees are closed under RAKE;
//! * **Lemma 2.1** — `⌊log₂ n⌋` RAKEs reduce a left-justified tree to a
//!   chain, namely its leftmost path;
//! * (Miller–Reif) alternating RAKE and COMPRESS contracts *any* tree
//!   in `O(log n)` rounds — the schedule §3's dynamic program simulates
//!   with the `H` (RAKE) and `F` (COMPRESS) recurrences.

use crate::arena::{Node, Tree, NONE};

/// One unrestricted RAKE: removes every leaf (except a root that is
/// itself a leaf). Nodes that become childless turn into leaves for the
/// next round.
pub fn rake(tree: &Tree) -> Tree {
    let keep = |t: &Tree, v: usize| !t.nodes()[v].is_leaf() || v == t.root();
    filter_tree(tree, keep)
}

/// The paper's restricted RAKE: removes a leaf only when its sibling is
/// also a leaf (or when it is an only child of a unary node — the
/// degenerate sibling case is excluded: only-children stay).
pub fn rake_restricted(tree: &Tree) -> Tree {
    let keep = |t: &Tree, v: usize| {
        let n = &t.nodes()[v];
        if !n.is_leaf() || v == t.root() {
            return true;
        }
        let p = &t.nodes()[n.parent];
        if p.left == NONE || p.right == NONE {
            return true; // only child: not raked
        }
        let sib = if p.left == v { p.right } else { p.left };
        !t.nodes()[sib].is_leaf()
    };
    filter_tree(tree, keep)
}

/// One COMPRESS: splices out every other node of each maximal unary
/// chain (the odd-position ones, counting the chain head as 0).
pub fn compress(tree: &Tree) -> Tree {
    let nodes = tree.nodes();
    let unary = |v: usize| {
        let n = &nodes[v];
        (n.left == NONE) != (n.right == NONE)
    };
    // A chain head is a unary node whose parent is not unary (or root).
    let mut remove = vec![false; nodes.len()];
    for v in tree.reachable() {
        if !unary(v) {
            continue;
        }
        let p = nodes[v].parent;
        let is_head = p == NONE || !unary(p);
        if is_head {
            // Walk the chain, marking odd positions.
            let mut cur = v;
            let mut pos = 0u32;
            loop {
                if pos % 2 == 1 {
                    remove[cur] = true;
                }
                let child = if nodes[cur].left != NONE {
                    nodes[cur].left
                } else {
                    nodes[cur].right
                };
                if child == NONE || !unary(child) {
                    break;
                }
                cur = child;
                pos += 1;
            }
        }
    }
    filter_tree(tree, |_, v| !remove[v])
}

/// Contracts the tree by alternating RAKE and COMPRESS until one node
/// remains; returns the number of (RAKE, COMPRESS) rounds.
pub fn contract_rounds(tree: &Tree) -> usize {
    let mut t = tree.clone();
    let mut rounds = 0;
    while t.reachable().len() > 1 {
        t = compress(&rake(&t));
        rounds += 1;
        assert!(
            rounds <= 4 * usize::BITS as usize,
            "contraction failed to converge"
        );
    }
    rounds
}

/// Applies RAKE until the tree is a chain (every node has ≤ 1 child);
/// returns `(rounds, chain)` — Lemma 2.1's reduction.
pub fn rake_to_chain(tree: &Tree) -> (usize, Tree) {
    let mut t = tree.clone();
    let mut rounds = 0;
    while !is_chain(&t) {
        t = rake(&t);
        rounds += 1;
        assert!(
            rounds <= 4 * usize::BITS as usize,
            "rake failed to converge"
        );
    }
    (rounds, t)
}

/// Is every node unary (or the single leaf)?
pub fn is_chain(tree: &Tree) -> bool {
    tree.reachable().into_iter().all(|v| {
        let n = &tree.nodes()[v];
        n.left == NONE || n.right == NONE
    })
}

/// Rebuilds the tree keeping only nodes accepted by `keep`; a removed
/// node's surviving descendants reattach to its nearest kept ancestor
/// along the same child slot. The root is always kept.
fn filter_tree(tree: &Tree, keep: impl Fn(&Tree, usize) -> bool) -> Tree {
    let src = tree.nodes();
    let mut nodes: Vec<Node> = Vec::new();
    // (src node, new parent, as-left)
    let mut stack: Vec<(usize, usize, bool)> = vec![(tree.root(), NONE, true)];
    let mut new_root = NONE;
    while let Some((s, parent, as_left)) = stack.pop() {
        if parent != NONE && !keep(tree, s) {
            // Dropped: its children (if any) are dropped too — RAKE and
            // COMPRESS only remove leaves / unary nodes, so splicing
            // reattaches the single child in the unary case.
            let n = &src[s];
            let child = if n.left != NONE { n.left } else { n.right };
            if child != NONE {
                stack.push((child, parent, as_left));
            }
            continue;
        }
        let id = nodes.len();
        nodes.push(Node {
            parent,
            left: NONE,
            right: NONE,
            tag: src[s].tag,
        });
        if parent == NONE {
            new_root = id;
        } else if as_left {
            nodes[parent].left = id;
        } else {
            nodes[parent].right = id;
        }
        let n = &src[s];
        if n.right != NONE {
            stack.push((n.right, id, false));
        }
        if n.left != NONE {
            stack.push((n.left, id, true));
        }
    }
    // Internal nodes that lost all children keep their (now-stale) tag
    // slot empty; leaves carried tags already.
    normalize_single_children(&mut nodes);
    Tree::from_parts(nodes, new_root).expect("filter preserves validity")
}

/// Moves right-only children to the left slot (arena invariant).
fn normalize_single_children(nodes: &mut [Node]) {
    for i in 0..nodes.len() {
        if nodes[i].left == NONE && nodes[i].right != NONE {
            nodes[i].left = nodes[i].right;
            nodes[i].right = NONE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::TreeBuilder;
    use crate::monotone::build_monotone;
    use crate::pattern::build_exact;
    use crate::shape::{is_left_justified, leftmost_path};

    fn perfect(height: u32) -> Tree {
        fn rec(b: &mut TreeBuilder, h: u32) -> usize {
            if h == 0 {
                b.leaf(None)
            } else {
                let l = rec(b, h - 1);
                let r = rec(b, h - 1);
                b.internal(l, Some(r))
            }
        }
        let mut b = TreeBuilder::new();
        let root = rec(&mut b, height);
        b.build(root).unwrap()
    }

    #[test]
    fn rake_removes_all_leaves() {
        let t = perfect(3);
        let r = rake(&t);
        assert_eq!(r.leaf_count(), 4); // previous internal level
        assert_eq!(r.height(), 2);
        r.validate().unwrap();
    }

    #[test]
    fn rake_keeps_lone_root() {
        let t = Tree::leaf(Some(0));
        let r = rake(&t);
        assert_eq!(r.reachable().len(), 1);
    }

    #[test]
    fn restricted_rake_spares_lone_leaves() {
        // Node with children (leaf, internal(leaf,leaf)): the lone left
        // leaf's sibling is internal, so restricted RAKE keeps it but
        // removes the two deep leaves.
        let mut b = TreeBuilder::new();
        let l = b.leaf(Some(0));
        let x = b.leaf(Some(1));
        let y = b.leaf(Some(2));
        let sub = b.internal(x, Some(y));
        let root = b.internal(l, Some(sub));
        let t = b.build(root).unwrap();

        let restricted = rake_restricted(&t);
        assert_eq!(restricted.leaf_count(), 2); // leaf 0 kept, sub became leaf
        let tags: Vec<_> = restricted.leaf_levels().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![Some(0), None]);

        let unrestricted = rake(&t);
        assert_eq!(unrestricted.leaf_count(), 1); // only sub survives as leaf
    }

    #[test]
    fn proposition_2_1_left_justified_closed_under_rake() {
        for seed in 0..10 {
            let p = partree_core::gen::monotone_pattern(48, seed);
            let mut t = build_monotone(&p).unwrap();
            assert!(is_left_justified(&t));
            for _ in 0..4 {
                t = rake(&t);
                assert!(is_left_justified(&t), "seed={seed}");
                if t.reachable().len() == 1 {
                    break;
                }
            }
        }
    }

    #[test]
    fn lemma_2_1_log_rakes_reach_the_leftmost_path() {
        for seed in 0..10 {
            let p = partree_core::gen::monotone_pattern(64, seed);
            let t = build_monotone(&p).unwrap();
            let n = t.reachable().len();
            let spine_before = leftmost_path(&t).len();
            let (rounds, chain) = rake_to_chain(&t);
            let bound = (n as f64).log2().floor() as usize + 1;
            assert!(rounds <= bound, "seed={seed}: {rounds} rakes > ⌊log {n}⌋");
            // The residual chain is a prefix of the original leftmost path.
            assert!(is_chain(&chain));
            assert!(chain.reachable().len() <= spine_before);
        }
    }

    #[test]
    fn compress_halves_a_chain() {
        // Unary chain of length 9 splices to ⌈9/2⌉-ish in one round.
        let mut b = TreeBuilder::new();
        let mut cur = b.leaf(Some(0));
        for _ in 0..8 {
            cur = b.internal(cur, None);
        }
        let t = b.build(cur).unwrap();
        let c = compress(&t);
        c.validate().unwrap();
        let len_before = t.reachable().len();
        let len_after = c.reachable().len();
        assert!(
            len_after <= len_before / 2 + 2,
            "{len_before} → {len_after}"
        );
        assert_eq!(c.leaf_depths().len(), 1); // still exactly one leaf
    }

    #[test]
    fn contract_rounds_logarithmic() {
        for seed in 0..10 {
            let p = partree_core::gen::full_tree_pattern(128, seed);
            let t = build_exact(&p).unwrap();
            let n = t.reachable().len();
            let rounds = contract_rounds(&t);
            let bound = 3 * ((n as f64).log2().ceil() as usize) + 3;
            assert!(rounds <= bound, "seed={seed}: {rounds} rounds for n={n}");
        }
    }

    #[test]
    fn contract_rounds_on_degenerate_chain() {
        let mut b = TreeBuilder::new();
        let mut cur = b.leaf(Some(0));
        for _ in 0..63 {
            cur = b.internal(cur, None);
        }
        let t = b.build(cur).unwrap();
        let rounds = contract_rounds(&t);
        assert!(
            rounds <= 10,
            "chain of 64 should contract in ≤ 10 rounds, took {rounds}"
        );
    }
}
