//! Leaf patterns: classification, segment representation, and the exact
//! sequential baseline builder.
//!
//! A *pattern* is the sequence of leaf levels, left to right, that the
//! Tree Construction Problem (Definition 1.1) asks us to realize. This
//! module provides the vocabulary (monotone / bitonic classification,
//! the `((l'_1, n_1), …, (l'_m, n_m))` segment representation of §7.2)
//! and [`build_exact`] — a sequential stack-based builder that realizes
//! *any* feasible pattern in one left-to-right pass. It is the oracle
//! the parallel constructions (Theorems 7.1–7.3) are tested against.

use crate::arena::{Node, Tree, NONE};
use partree_core::{Error, Result};

/// Maximum admissible leaf level: the output tree materializes one node
/// per level on each chain, so levels are capped to keep outputs sane.
pub const MAX_LEVEL: u32 = 1 << 22;

/// Run-length encodes a pattern into the paper's segment representation
/// `((l'_1, n_1), …, (l'_m, n_m))` with `l'_j ≠ l'_{j+1}`.
pub fn segments(levels: &[u32]) -> Vec<(u32, usize)> {
    let mut out: Vec<(u32, usize)> = Vec::new();
    for &l in levels {
        match out.last_mut() {
            Some((last, n)) if *last == l => *n += 1,
            _ => out.push((l, 1)),
        }
    }
    out
}

/// Is the pattern monotone (non-increasing or non-decreasing)?
pub fn is_monotone(levels: &[u32]) -> bool {
    levels.windows(2).all(|w| w[0] >= w[1]) || levels.windows(2).all(|w| w[0] <= w[1])
}

/// Is the pattern bitonic (non-decreasing, then non-increasing)?
/// Monotone patterns are bitonic.
pub fn is_bitonic(levels: &[u32]) -> bool {
    let mut i = 0;
    while i + 1 < levels.len() && levels[i] <= levels[i + 1] {
        i += 1;
    }
    levels[i..].windows(2).all(|w| w[0] >= w[1])
}

/// Validates levels against [`MAX_LEVEL`].
pub fn check_levels(levels: &[u32]) -> Result<()> {
    match levels.iter().find(|&&l| l > MAX_LEVEL) {
        Some(&l) => Err(Error::invalid(format!(
            "leaf level {l} exceeds MAX_LEVEL ({MAX_LEVEL})"
        ))),
        None => Ok(()),
    }
}

/// Builds a tree realizing an arbitrary pattern, sequentially, by
/// level-by-level run reduction: repeatedly take the deepest level `L`
/// present, pair adjacent items of each maximal level-`L` run under
/// parents at `L−1` (an odd leftover is lifted by a unary node — the
/// exchange argument shows maximal pairing never hurts feasibility),
/// until everything sits at level 0. Feasible iff exactly one item
/// remains. Leaves are tagged `0 … n-1` left to right.
///
/// Returns [`Error::InfeasiblePattern`] (with the residual forest size)
/// when no single tree realizes the pattern. `O(n·depth + Σ chain
/// lengths)` time.
pub fn build_exact(levels: &[u32]) -> Result<Tree> {
    build_exact_tagged(levels, |i| i)
}

/// [`build_exact`] with custom leaf tags.
pub fn build_exact_tagged(levels: &[u32], tag: impl Fn(usize) -> usize) -> Result<Tree> {
    check_levels(levels)?;
    if levels.is_empty() {
        return Err(Error::invalid("empty pattern"));
    }

    let mut nodes: Vec<Node> = Vec::with_capacity(2 * levels.len());
    let mut items: Vec<(usize, u32)> = levels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            nodes.push(Node {
                parent: NONE,
                left: NONE,
                right: NONE,
                tag: Some(tag(i)),
            });
            (i, l)
        })
        .collect();

    loop {
        let cur_max = items.iter().map(|&(_, l)| l).max().expect("nonempty");
        if cur_max == 0 {
            break;
        }
        // Degenerate fast path: a single item just rises to the root.
        if items.len() == 1 {
            let (id, l) = items[0];
            items[0] = (lift(&mut nodes, id, l), 0);
            break;
        }
        // Reduce every maximal run at the deepest level.
        let mut next: Vec<(usize, u32)> = Vec::with_capacity(items.len());
        let mut i = 0;
        while i < items.len() {
            if items[i].1 != cur_max {
                next.push(items[i]);
                i += 1;
                continue;
            }
            let mut j = i;
            while j < items.len() && items[j].1 == cur_max {
                j += 1;
            }
            let mut k = i;
            while k + 1 < j {
                let parent = merge(&mut nodes, items[k].0, items[k + 1].0);
                next.push((parent, cur_max - 1));
                k += 2;
            }
            if k < j {
                // Odd leftover: a unary step up.
                next.push((lift(&mut nodes, items[k].0, 1), cur_max - 1));
            }
            i = j;
        }
        items = next;
    }

    if items.len() != 1 {
        return Err(Error::InfeasiblePattern {
            trees_needed: Some(items.len()),
        });
    }
    Tree::from_parts(nodes, items[0].0)
}

/// Adds `by` unary (left-child) chain nodes above `id`.
fn lift(nodes: &mut Vec<Node>, mut id: usize, by: u32) -> usize {
    for _ in 0..by {
        let p = nodes.len();
        nodes.push(Node {
            parent: NONE,
            left: id,
            right: NONE,
            tag: None,
        });
        nodes[id].parent = p;
        id = p;
    }
    id
}

/// Creates an internal node over `(left, right)`.
fn merge(nodes: &mut Vec<Node>, left: usize, right: usize) -> usize {
    let p = nodes.len();
    nodes.push(Node {
        parent: NONE,
        left,
        right,
        tag: None,
    });
    nodes[left].parent = p;
    nodes[right].parent = p;
    p
}

/// Brute-force feasibility oracle (exponential in spirit, memoized to
/// `O(n² · max_level)`) — test support for validating the fast builders
/// on exhaustive small inputs.
pub fn feasible_brute(levels: &[u32]) -> bool {
    if levels.is_empty() {
        return false;
    }
    let n = levels.len();
    let max_l = *levels.iter().max().expect("nonempty");
    // determinism: memo cache — keyed lookups only, never iterated.
    let mut memo = std::collections::HashMap::<(usize, usize, u32), bool>::new();
    fn rec(
        levels: &[u32],
        i: usize,
        j: usize,
        lvl: u32,
        max_l: u32,
        // determinism: memo cache — keyed lookups only, never iterated.
        memo: &mut std::collections::HashMap<(usize, usize, u32), bool>,
    ) -> bool {
        if lvl > max_l {
            return false;
        }
        if j - i == 1 {
            return levels[i] >= lvl;
        }
        if let Some(&v) = memo.get(&(i, j, lvl)) {
            return v;
        }
        // Unary root, or a binary split.
        let mut ok = rec(levels, i, j, lvl + 1, max_l, memo);
        if !ok {
            for k in i + 1..j {
                if rec(levels, i, k, lvl + 1, max_l, memo)
                    && rec(levels, k, j, lvl + 1, max_l, memo)
                {
                    ok = true;
                    break;
                }
            }
        }
        memo.insert((i, j, lvl), ok);
        ok
    }
    rec(levels, 0, n, 0, max_l, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_representation() {
        assert_eq!(segments(&[3, 3, 1, 2, 2, 2]), vec![(3, 2), (1, 1), (2, 3)]);
        assert_eq!(segments(&[]), vec![]);
        assert_eq!(segments(&[5]), vec![(5, 1)]);
    }

    #[test]
    fn classification() {
        assert!(is_monotone(&[3, 2, 2, 1]));
        assert!(is_monotone(&[1, 2, 3]));
        assert!(!is_monotone(&[1, 3, 2]));
        assert!(is_bitonic(&[1, 3, 2]));
        assert!(is_bitonic(&[3, 2, 1]));
        assert!(is_bitonic(&[1, 2, 3]));
        assert!(!is_bitonic(&[2, 1, 2]));
        assert!(is_bitonic(&[]));
        assert!(is_monotone(&[7]));
    }

    #[test]
    fn build_exact_realizes_full_tree_patterns() {
        for seed in 0..20 {
            let p = partree_core::gen::full_tree_pattern(30, seed);
            let t = build_exact(&p).expect("full tree patterns are feasible");
            t.validate().unwrap();
            assert_eq!(t.leaf_depths(), p, "seed={seed}");
            // Tags are 0..n in order.
            let tags: Vec<_> = t.leaf_levels().iter().map(|&(_, t)| t.unwrap()).collect();
            assert_eq!(tags, (0..30).collect::<Vec<_>>());
        }
    }

    #[test]
    fn build_exact_underfull_pattern() {
        // (2): a leaf at depth 2 under a unary chain.
        let t = build_exact(&[2]).unwrap();
        assert_eq!(t.leaf_depths(), vec![2]);
        assert!(!t.is_full());
        // (2, 2, 2): feasible, not complete.
        let t = build_exact(&[2, 2, 2]).unwrap();
        assert_eq!(t.leaf_depths(), vec![2, 2, 2]);
    }

    #[test]
    fn build_exact_rejects_infeasible() {
        assert!(build_exact(&[1, 1, 1]).is_err());
        assert!(build_exact(&[2, 1, 2]).is_err());
        assert!(build_exact(&[0, 0]).is_err());
        assert!(build_exact(&[]).is_err());
    }

    #[test]
    fn build_exact_accepts_single_root_leaf() {
        let t = build_exact(&[0]).unwrap();
        assert_eq!(t.leaf_depths(), vec![0]);
    }

    #[test]
    fn exhaustive_agreement_with_brute_force() {
        // Every pattern of length ≤ 5 over levels 0..=3, plus length 6
        // over levels 0..=4 (the [2,4,4,4,2,2] regression lives there).
        for n in 1..=6usize {
            let mut idx = vec![0u32; n];
            loop {
                let feasible = feasible_brute(&idx);
                match build_exact(&idx) {
                    Ok(t) => {
                        assert!(feasible, "builder accepted infeasible {idx:?}");
                        assert_eq!(t.leaf_depths(), idx, "wrong tree for {idx:?}");
                        t.validate().unwrap();
                    }
                    Err(_) => assert!(!feasible, "builder rejected feasible {idx:?}"),
                }
                // Increment the mixed-radix counter.
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] <= if n == 6 { 4 } else { 3 } {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
        }
    }

    #[test]
    fn level_guard() {
        assert!(build_exact(&[MAX_LEVEL + 1]).is_err());
        assert!(check_levels(&[0, MAX_LEVEL]).is_ok());
    }
}
