//! # partree-trees
//!
//! The tree substrate of the workspace and the paper's Section 7: the
//! Tree Construction Problem — "given `n` integer values `l_1 … l_n`,
//! construct an ordered binary tree with `n` leaves whose levels when
//! read from left to right are `l_1 … l_n`".
//!
//! Modules:
//!
//! * [`arena`] — ordered binary trees in index arenas: the common
//!   currency of Huffman, Shannon–Fano and OBST outputs; grafting,
//!   traversal, validation, rendering;
//! * [`shape`] — left-justified trees (§2): the structural property that
//!   powers the paper's Huffman algorithms; completeness and height
//!   predicates, Lemma 2.1/Corollary 2.1 checks;
//! * [`contract`] — RAKE and COMPRESS (tree contraction, §2–3);
//! * [`euler`] — Euler-tour tree computations (depths, subtree sizes)
//!   on the pointer-jumping substrate — the Tarjan–Vishkin EREW
//!   technique the paper's model assumes;
//! * [`kraft`] — exact Kraft sums with `O(log n)`-bit arithmetic
//!   (Lemma 7.1/7.2): the feasibility oracle;
//! * [`pattern`] — leaf patterns, segment representation, and the exact
//!   sequential baseline builder;
//! * [`level_build`] — the per-level layout engine shared by the
//!   monotone and bitonic constructions;
//! * [`monotone`] — Theorem 7.1: monotone patterns in `O(log n)` time,
//!   `n/log n` processors;
//! * [`bitonic`] — Theorem 7.2: bitonic patterns, minimal forests;
//! * [`finger`] — Theorem 7.3: general patterns by Finger-Reduction.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// Index-based loops over multiple parallel arrays are the idiom of
// matrix/PRAM code; iterator rewrites obscure the index arithmetic the
// correctness arguments are phrased in.
#![allow(clippy::needless_range_loop)]

pub mod arena;
pub mod bitonic;
pub mod contract;
pub mod euler;
pub mod finger;
pub mod kraft;
pub mod level_build;
pub mod monotone;
pub mod pattern;
pub mod shape;

pub use arena::{Forest, Tree};
