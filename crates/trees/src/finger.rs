//! Theorem 7.3 — general leaf patterns by Finger-Reduction.
//!
//! A general pattern may have many *fingers* (local maxima of the level
//! sequence). Each round of Finger-Reduction removes every finger: the
//! run of levels strictly above the adjacent min-point level `c` is
//! realized as a minimal bitonic forest (Theorem 7.2) of `K` trees and
//! replaced by `K` placeholder leaves at level `c` — the paper's
//! `K = ⌈Σ n_k / 2^{l_k − l_{i−1}}⌉`. Every max-point disappears, so the
//! number of fingers at least halves per round (Finger Cut Lemma 7.3);
//! after `O(log m)` rounds the pattern is bitonic, the root tree is
//! built, and an expansion phase substitutes the recorded forests back
//! into their placeholders.

use crate::arena::{Node, Tree, NONE};
use crate::bitonic::build_bitonic_forest_tagged;
use crate::pattern::{check_levels, is_bitonic};
use partree_core::{Error, Result};

/// Outcome of the general construction: the tree plus reduction
/// statistics (for experiment E8).
pub struct GeneralBuild {
    /// The constructed tree (leaves tagged `0 … n-1` left to right).
    pub tree: Tree,
    /// Number of Finger-Reduction rounds executed (0 when the input was
    /// already bitonic).
    pub rounds: usize,
    /// Finger counts observed at the start of each round.
    pub finger_counts: Vec<usize>,
}

/// Builds a tree realizing an arbitrary leaf pattern, or reports
/// infeasibility. `O(n log m)` work for a pattern with `m` fingers.
///
/// ```
/// use partree_trees::finger::build_general;
///
/// // Two fingers around a valley — realizable:
/// let out = build_general(&[3, 3, 2, 3, 3])?;
/// assert_eq!(out.tree.leaf_depths(), vec![3, 3, 2, 3, 3]);
/// // Kraft-feasible but order-infeasible:
/// assert!(build_general(&[2, 1, 2]).is_err());
/// # Ok::<(), partree_core::Error>(())
/// ```
///
pub fn build_general(levels: &[u32]) -> Result<GeneralBuild> {
    check_levels(levels)?;
    if levels.is_empty() {
        return Err(Error::invalid("empty pattern"));
    }
    let n = levels.len();

    // Working pattern: segments of (level, leaf tags). Tags < n are
    // original leaves; tags ≥ n index `subs`.
    let mut segs: Vec<(u32, Vec<usize>)> = Vec::new();
    for (i, &l) in levels.iter().enumerate() {
        match segs.last_mut() {
            Some((last, tags)) if *last == l => tags.push(i),
            _ => segs.push((l, vec![i])),
        }
    }

    let mut subs: Vec<Tree> = Vec::new();
    let mut rounds = 0usize;
    let mut finger_counts = Vec::new();

    loop {
        let lvls: Vec<u32> = segs.iter().map(|&(l, _)| l).collect();
        if is_bitonic(&lvls) {
            break;
        }
        rounds += 1;
        if rounds > 2 * usize::BITS as usize {
            return Err(Error::Internal(
                "Finger-Reduction failed to converge".into(),
            ));
        }
        finger_counts.push(count_maxima(&lvls));

        // Min-point indices (local minima; pattern ends count when they
        // are below their single neighbour).
        let m = segs.len();
        let mins: Vec<usize> = (0..m)
            .filter(|&i| (i == 0 || lvls[i - 1] > lvls[i]) && (i + 1 == m || lvls[i + 1] > lvls[i]))
            .collect();
        debug_assert!(!mins.is_empty(), "a finite sequence has a minimum");

        // Hump intervals (exclusive of their anchoring minima): before
        // the first min, between consecutive mins, after the last min.
        // For each, the cut level is the *higher* adjacent min (or the
        // single adjacent min at the pattern boundary).
        let mut humps: Vec<(usize, usize, u32)> = Vec::new(); // [start, end) interior, cut level
        if mins[0] > 0 {
            humps.push((0, mins[0], lvls[mins[0]]));
        }
        for w in mins.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b - a > 1 {
                humps.push((a + 1, b, lvls[a].max(lvls[b])));
            }
        }
        if *mins.last().expect("nonempty") < m - 1 {
            let a = *mins.last().expect("nonempty");
            humps.push((a + 1, m, lvls[a]));
        }

        // Replace, right to left, the finger of each hump (its run of
        // segments with level > cut) by placeholder leaves at the cut
        // level.
        for &(start, end, cut) in humps.iter().rev() {
            // The finger: contiguous run with level > cut (the hump is
            // bitonic, so the run is an interval).
            let lo = (start..end).find(|&i| segs[i].0 > cut);
            let Some(lo) = lo else { continue }; // nothing above the cut
            let mut hi = lo;
            while hi + 1 < end && segs[hi + 1].0 > cut {
                hi += 1;
            }

            // Realize the finger relative to the cut level.
            let leaves: Vec<(u32, usize)> = segs[lo..=hi]
                .iter()
                .flat_map(|(l, tags)| tags.iter().map(move |&t| (l - cut, t)))
                .collect();
            let forest = build_bitonic_forest_tagged(&leaves)?;
            let trees = forest.split();

            // One placeholder per forest tree, in order.
            let mut placeholder_tags = Vec::with_capacity(trees.len());
            for t in trees {
                placeholder_tags.push(n + subs.len());
                subs.push(t);
            }
            segs.splice(lo..=hi, [(cut, placeholder_tags)]);
        }

        // Merge adjacent equal-level segments.
        let mut merged: Vec<(u32, Vec<usize>)> = Vec::with_capacity(segs.len());
        for (l, tags) in segs.drain(..) {
            match merged.last_mut() {
                Some((last, acc)) if *last == l => acc.extend(tags),
                _ => merged.push((l, tags)),
            }
        }
        segs = merged;
    }

    // Root tree over the final bitonic pattern.
    let flat: Vec<(u32, usize)> = segs
        .iter()
        .flat_map(|(l, tags)| tags.iter().map(move |&t| (*l, t)))
        .collect();
    let root_tree = build_bitonic_forest_tagged(&flat)?.into_tree()?;

    // Expansion: substitute the recorded forests for the placeholders.
    let tree = expand(&root_tree, &subs, n)?;
    tree.validate()?;
    Ok(GeneralBuild {
        tree,
        rounds,
        finger_counts,
    })
}

/// Number of local maxima (fingers) of a level sequence in segment form.
fn count_maxima(lvls: &[u32]) -> usize {
    let m = lvls.len();
    (0..m)
        .filter(|&i| (i == 0 || lvls[i - 1] < lvls[i]) && (i + 1 == m || lvls[i + 1] < lvls[i]))
        .count()
}

/// Rebuilds the tree with every placeholder leaf (tag ≥ `n`) replaced by
/// its recorded substitution tree, recursively. Single pass, iterative.
fn expand(root_tree: &Tree, subs: &[Tree], n: usize) -> Result<Tree> {
    let mut nodes: Vec<Node> = Vec::new();
    // (tree, node in that tree, new parent, as-left)
    let mut stack: Vec<(&Tree, usize, usize, bool)> =
        vec![(root_tree, root_tree.root(), NONE, true)];
    let mut root_new = NONE;

    while let Some((tree, s, parent, as_left)) = stack.pop() {
        let nd = &tree.nodes()[s];
        if let Some(tag) = nd.tag {
            if nd.is_leaf() && tag >= n {
                let sub = subs
                    .get(tag - n)
                    .ok_or_else(|| Error::Internal(format!("missing substitution {tag}")))?;
                stack.push((sub, sub.root(), parent, as_left));
                continue;
            }
        }
        let id = nodes.len();
        nodes.push(Node {
            parent,
            left: NONE,
            right: NONE,
            tag: nd.tag,
        });
        if parent == NONE {
            root_new = id;
        } else if as_left {
            nodes[parent].left = id;
        } else {
            nodes[parent].right = id;
        }
        if nd.right != NONE {
            stack.push((tree, nd.right, id, false));
        }
        if nd.left != NONE {
            stack.push((tree, nd.left, id, true));
        }
    }
    Tree::from_parts(nodes, root_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{build_exact, feasible_brute};
    use partree_core::gen;

    fn check_realizes(p: &[u32]) {
        let out = build_general(p).unwrap_or_else(|e| panic!("{p:?} should be feasible: {e}"));
        assert_eq!(out.tree.leaf_depths(), p, "depths for {p:?}");
        let tags: Vec<usize> = out
            .tree
            .leaf_levels()
            .iter()
            .map(|&(_, t)| t.expect("tagged"))
            .collect();
        assert_eq!(
            tags,
            (0..p.len()).collect::<Vec<_>>(),
            "tag order for {p:?}"
        );
    }

    #[test]
    fn bitonic_inputs_take_zero_rounds() {
        let out = build_general(&[1, 2, 3, 3]).unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.tree.leaf_depths(), vec![1, 2, 3, 3]);
    }

    #[test]
    fn simple_two_finger_pattern() {
        // (2, 1, 2) is infeasible (Kraft holds but order does not);
        // (3, 3, 2, 3, 3) is a feasible two-finger pattern.
        assert!(build_general(&[2, 1, 2]).is_err());
        check_realizes(&[3, 3, 2, 3, 3]);
    }

    #[test]
    fn full_tree_patterns_always_realizable() {
        for seed in 0..25 {
            let p = gen::full_tree_pattern(40, seed);
            check_realizes(&p);
        }
    }

    #[test]
    fn many_finger_patterns() {
        for seed in 0..10 {
            let p = gen::pattern_with_fingers(9, 7, seed);
            check_realizes(&p);
        }
    }

    #[test]
    fn rounds_logarithmic_in_fingers() {
        for humps in [2usize, 4, 8, 16, 32] {
            let p = gen::pattern_with_fingers(humps, 8, 3);
            let out = build_general(&p).unwrap();
            let m = gen::count_fingers(&p).max(2);
            let bound = (m as f64).log2().ceil() as usize + 2;
            assert!(
                out.rounds <= bound,
                "humps={humps}: {} rounds for {} fingers (bound {bound})",
                out.rounds,
                m
            );
        }
    }

    #[test]
    fn exhaustive_agreement_with_brute_force() {
        // All patterns of length ≤ 5 over levels 0..=3 and length 6 over
        // levels 0..=4: build_general must accept exactly the feasible
        // ones and realize them.
        for n in 1..=6usize {
            let mut idx = vec![0u32; n];
            loop {
                let feasible = feasible_brute(&idx);
                match build_general(&idx) {
                    Ok(out) => {
                        assert!(feasible, "accepted infeasible {idx:?}");
                        assert_eq!(out.tree.leaf_depths(), idx, "wrong tree for {idx:?}");
                    }
                    Err(_) => assert!(!feasible, "rejected feasible {idx:?}"),
                }
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] <= if n == 6 { 4 } else { 3 } {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
        }
    }

    #[test]
    fn agreement_with_sequential_baseline_on_random_patterns() {
        use rand::Rng;
        let mut r = gen::rng(2024);
        for _ in 0..200 {
            let n = r.gen_range(1..40);
            let p: Vec<u32> = (0..n).map(|_| r.gen_range(0..8)).collect();
            let fast = build_general(&p);
            let slow = build_exact(&p);
            assert_eq!(fast.is_ok(), slow.is_ok(), "disagreement on {p:?}");
            if let Ok(out) = fast {
                assert_eq!(out.tree.leaf_depths(), p);
            }
        }
    }

    #[test]
    fn empty_pattern_rejected() {
        assert!(build_general(&[]).is_err());
    }
}
