//! Left-justified trees (§2 of the paper).
//!
//! A binary tree is **left-justified** when (1) unary nodes keep their
//! child on the left, and (2) for siblings `u` (left) and `v` (right),
//! wherever `T_v` is non-empty at some level `l`, `T_u` is *complete* at
//! level `l` (has all `2^l` nodes). Equivalently: every left sibling
//! subtree is perfect at least down to its right sibling's height.
//!
//! Consequences the Huffman algorithms lean on:
//!
//! * **Lemma 2.1** — `⌊log₂ n⌋` RAKEs reduce a left-justified tree to
//!   its leftmost path (see [`crate::contract`]);
//! * **Corollary 2.1** — every subtree hanging off the leftmost path has
//!   height `O(log n)`, which is why height-`⌈log n⌉`-bounded DP plus a
//!   spine computation suffices (§5).

use crate::arena::{Tree, NONE};

/// Per-node structural measures used by the left-justified predicate.
#[derive(Debug, Clone, Copy)]
struct Measures {
    /// Height of the subtree (leaf = 0).
    height: u32,
    /// Largest `d` such that the subtree is complete (perfect) through
    /// level `d`: every level `l ≤ d` has `2^l` nodes.
    perfect_depth: u32,
}

fn measures(tree: &Tree) -> Vec<Option<Measures>> {
    let nodes = tree.nodes();
    let mut out: Vec<Option<Measures>> = vec![None; nodes.len()];
    // Postorder via double-visit stack.
    let mut stack = vec![(tree.root(), false)];
    while let Some((v, processed)) = stack.pop() {
        let n = &nodes[v];
        if !processed && !n.is_leaf() {
            stack.push((v, true));
            if n.left != NONE {
                stack.push((n.left, false));
            }
            if n.right != NONE {
                stack.push((n.right, false));
            }
            continue;
        }
        let m = if n.is_leaf() {
            Measures {
                height: 0,
                perfect_depth: 0,
            }
        } else if n.right == NONE {
            let lm = out[n.left].expect("child processed");
            Measures {
                height: lm.height + 1,
                perfect_depth: 0,
            }
        } else {
            let lm = out[n.left].expect("child processed");
            let rm = out[n.right].expect("child processed");
            Measures {
                height: lm.height.max(rm.height) + 1,
                perfect_depth: lm.perfect_depth.min(rm.perfect_depth) + 1,
            }
        };
        out[v] = Some(m);
    }
    out
}

/// Does `tree` satisfy the left-justified property?
pub fn is_left_justified(tree: &Tree) -> bool {
    let ms = measures(tree);
    tree.reachable().into_iter().all(|v| {
        let n = &tree.nodes()[v];
        if n.left == NONE || n.right == NONE {
            // Unary-on-the-left is enforced by the arena invariant.
            return true;
        }
        let lm = ms[n.left].expect("reachable");
        let rm = ms[n.right].expect("reachable");
        // T_left must be complete at every level T_right occupies.
        lm.perfect_depth >= rm.height
    })
}

/// Maximum height among subtrees hanging off the leftmost path
/// (Corollary 2.1 bounds this by `O(log n)` for left-justified trees).
pub fn max_off_spine_height(tree: &Tree) -> u32 {
    let ms = measures(tree);
    let mut best = 0;
    let mut v = tree.root();
    loop {
        let n = &tree.nodes()[v];
        if n.right != NONE {
            best = best.max(ms[n.right].expect("reachable").height);
        }
        if n.left == NONE {
            break;
        }
        v = n.left;
    }
    best
}

/// The leftmost path (spine) from the root, as node indices.
pub fn leftmost_path(tree: &Tree) -> Vec<usize> {
    let mut out = vec![tree.root()];
    let mut v = tree.root();
    while tree.nodes()[v].left != NONE {
        v = tree.nodes()[v].left;
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::TreeBuilder;

    /// Perfect binary tree of the given height.
    fn perfect(height: u32) -> Tree {
        fn rec(b: &mut TreeBuilder, h: u32) -> usize {
            if h == 0 {
                b.leaf(None)
            } else {
                let l = rec(b, h - 1);
                let r = rec(b, h - 1);
                b.internal(l, Some(r))
            }
        }
        let mut b = TreeBuilder::new();
        let root = rec(&mut b, height);
        b.build(root).unwrap()
    }

    #[test]
    fn perfect_trees_are_left_justified() {
        for h in 0..5 {
            assert!(is_left_justified(&perfect(h)), "height {h}");
        }
    }

    #[test]
    fn left_chain_is_left_justified() {
        // Chain of unary nodes ending in a leaf.
        let mut b = TreeBuilder::new();
        let mut cur = b.leaf(None);
        for _ in 0..5 {
            cur = b.internal(cur, None);
        }
        let t = b.build(cur).unwrap();
        assert!(is_left_justified(&t));
        assert_eq!(max_off_spine_height(&t), 0);
        assert_eq!(leftmost_path(&t).len(), 6);
    }

    #[test]
    fn deep_right_subtree_is_not_left_justified() {
        // Root with left = leaf, right = perfect(2): the right sibling is
        // deeper than the left is perfect.
        let mut b = TreeBuilder::new();
        let l = b.leaf(None);
        let r = {
            let x = b.leaf(None);
            let y = b.leaf(None);
            let z = b.internal(x, Some(y));
            let w = b.leaf(None);
            b.internal(z, Some(w))
        };
        let root = b.internal(l, Some(r));
        let t = b.build(root).unwrap();
        assert!(!is_left_justified(&t));
    }

    #[test]
    fn spine_with_shallow_right_subtrees_is_left_justified() {
        // Left spine where each node hangs a right subtree no deeper
        // than the left continuation is perfect… simplest: right = leaf.
        let mut b = TreeBuilder::new();
        let mut cur = b.leaf(None);
        for _ in 0..4 {
            let r = b.leaf(None);
            cur = b.internal(cur, Some(r));
        }
        let t = b.build(cur).unwrap();
        // Left child of each node must be perfect to depth height(right)=0:
        // trivially true.
        assert!(is_left_justified(&t));
        assert_eq!(max_off_spine_height(&t), 0);
    }

    #[test]
    fn off_spine_height_measured() {
        // Root: left = perfect(2), right = perfect(2): left-justified,
        // off-spine height = 2.
        let mut b = TreeBuilder::new();
        let l = {
            let a = b.leaf(None);
            let c = b.leaf(None);
            let d = b.internal(a, Some(c));
            let e = b.leaf(None);
            let f = b.leaf(None);
            let g = b.internal(e, Some(f));
            b.internal(d, Some(g))
        };
        let r = {
            let a = b.leaf(None);
            let c = b.leaf(None);
            let d = b.internal(a, Some(c));
            let e = b.leaf(None);
            let f = b.leaf(None);
            let g = b.internal(e, Some(f));
            b.internal(d, Some(g))
        };
        let root = b.internal(l, Some(r));
        let t = b.build(root).unwrap();
        assert!(is_left_justified(&t));
        assert_eq!(max_off_spine_height(&t), 2);
    }

    #[test]
    fn corollary_2_1_on_monotone_pattern_trees() {
        // Trees built from monotone patterns (deepest leftmost) are
        // left-justified, and their off-spine subtrees are ≤ ⌈log n⌉
        // when the pattern came from a full random tree.
        for seed in 0..10 {
            let p = partree_core::gen::monotone_pattern(64, seed);
            let t = crate::monotone::build_monotone(&p).unwrap();
            assert!(is_left_justified(&t), "seed={seed}");
            assert!(
                max_off_spine_height(&t) <= 7,
                "seed={seed}: off-spine height {} > log2(64)+1",
                max_off_spine_height(&t)
            );
        }
    }
}
