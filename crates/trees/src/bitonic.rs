//! Theorem 7.2 — trees from bitonic leaf patterns.
//!
//! "A tree from a bitonic leaf pattern can be constructed in `O(log n)`
//! time, using `n/log n` processors on an EREW PRAM if it exists. In
//! general, the minimum number of trees (in order) will be generated
//! with the prescribed leaf pattern."
//!
//! Feasibility is again Kraft's inequality (Lemma 7.2). The forest
//! output is what Finger-Reduction (Theorem 7.3) consumes: a finger is
//! replaced by exactly as many leaves as the minimal forest realizing it
//! has trees.

use crate::arena::{Forest, Tree};
use crate::level_build::build_layout;
use crate::pattern::is_bitonic;
use partree_core::{Error, Result};

/// Builds the tree realizing a bitonic pattern (leaves tagged `0 … n-1`).
/// Errors when the pattern is not bitonic or needs more than one tree.
pub fn build_bitonic(levels: &[u32]) -> Result<Tree> {
    build_bitonic_forest(levels)?.into_tree()
}

/// The minimal ordered forest realizing a bitonic pattern
/// (`⌈Σ 2^{-l_i}⌉` trees).
pub fn build_bitonic_forest(levels: &[u32]) -> Result<Forest> {
    if !is_bitonic(levels) {
        return Err(Error::invalid("pattern is not bitonic"));
    }
    let tagged: Vec<(u32, usize)> = levels.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    build_layout(&tagged)
}

/// Forest construction over externally tagged leaves — the entry point
/// Finger-Reduction uses for hump replacement.
pub fn build_bitonic_forest_tagged(leaves: &[(u32, usize)]) -> Result<Forest> {
    let levels: Vec<u32> = leaves.iter().map(|&(l, _)| l).collect();
    if !is_bitonic(&levels) {
        return Err(Error::invalid("pattern is not bitonic"));
    }
    build_layout(leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kraft::{kraft_feasible, minimal_forest_size};
    use crate::pattern::build_exact;

    #[test]
    fn realizes_generated_bitonic_patterns() {
        for seed in 0..30 {
            let p = partree_core::gen::bitonic_pattern(63, seed);
            let t = build_bitonic(&p).expect("generated patterns are feasible");
            t.validate().unwrap();
            assert_eq!(t.leaf_depths(), p, "seed={seed}");
        }
    }

    #[test]
    fn kraft_iff_feasible_lemma_7_2() {
        // Exhaustive bitonic patterns: length ≤ 5, levels ≤ 3.
        let mut checked = 0usize;
        for n in 1..=5usize {
            let mut idx = vec![0u32; n];
            loop {
                if is_bitonic(&idx) {
                    checked += 1;
                    let ours = build_bitonic(&idx);
                    let kraft = kraft_feasible(&idx);
                    assert_eq!(ours.is_ok(), kraft, "pattern {idx:?}");
                    assert_eq!(build_exact(&idx).is_ok(), kraft, "baseline on {idx:?}");
                    if let Ok(t) = ours {
                        assert_eq!(t.leaf_depths(), idx);
                    }
                }
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] <= 3 {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
        }
        assert!(checked > 100, "exhaustive sweep too small: {checked}");
    }

    #[test]
    fn minimal_forest_sizes_match_kraft_ceiling() {
        for p in [
            vec![1u32, 1, 1],
            vec![2, 3, 3, 2, 2, 2],
            vec![0, 0, 0],
            vec![1, 2, 3, 3, 2, 1],
        ] {
            let f = build_bitonic_forest(&p).unwrap();
            assert_eq!(f.len() as u64, minimal_forest_size(&p), "pattern {p:?}");
            let got: Vec<u32> = f.leaf_levels().iter().map(|&(l, _)| l).collect();
            assert_eq!(got, p);
        }
    }

    #[test]
    fn tagged_forest_keeps_tags() {
        let leaves = vec![(2u32, 100), (3, 200), (3, 300), (1, 400)];
        let f = build_bitonic_forest_tagged(&leaves).unwrap();
        let got = f.leaf_levels();
        assert_eq!(
            got,
            vec![
                (2, Some(100)),
                (3, Some(200)),
                (3, Some(300)),
                (1, Some(400))
            ]
        );
    }

    #[test]
    fn non_bitonic_rejected() {
        assert!(build_bitonic(&[2, 1, 2]).is_err());
        assert!(build_bitonic_forest_tagged(&[(2, 0), (1, 1), (2, 2)]).is_err());
    }
}
