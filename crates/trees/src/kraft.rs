//! Exact Kraft sums with `O(log n)`-bit arithmetic.
//!
//! Lemma 7.1 (Kraft): a monotone leaf pattern `(l_1 … l_n)` is realizable
//! iff `Σ 2^{-l_i} ≤ 1`; Lemma 7.2 extends this to bitonic patterns. The
//! paper warns that "one has to be careful that the numbers added have
//! only `O(log n)` bits" — naively `Σ 2^{-l_i}` needs `max l_i` bits.
//!
//! The trick (the paper's `a'_{l-1} = ⌈a_l / 2⌉ + a_{l-1}`-style
//! reduction): process the level histogram from the deepest level up,
//! carrying `used_l = a_l + ⌈used_{deeper} / 2^{gap}⌉`. An easy induction
//! using `⌈⌈x⌉/2⌉ = ⌈x/2⌉` shows `used_l = ⌈2^l · Σ_{l_i ≥ l} 2^{-l_i}⌉`,
//! so every intermediate value is at most `n + 1` — `O(log n)` bits — and
//! the final `used_0` is exactly `⌈Σ 2^{-l_i}⌉`: the minimal number of
//! trees realizing the pattern (Theorem 7.2's forest size).

/// `⌈Σ_i 2^{-levels[i]}⌉` computed exactly, plus whether the sum is an
/// exact integer (no rounding occurred anywhere).
///
/// Returns `(ceil, exact)`. For an empty pattern: `(0, true)`.
pub fn kraft_ceil_exact(levels: &[u32]) -> (u64, bool) {
    if levels.is_empty() {
        return (0, true);
    }
    // Histogram over distinct levels, deepest first.
    let mut sorted: Vec<u32> = levels.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));

    let mut used: u64 = 0;
    let mut cur_level = sorted[0];
    let mut exact = true;
    let mut idx = 0;
    while idx < sorted.len() {
        // Count this level's multiplicity.
        let mut count = 0u64;
        while idx < sorted.len() && sorted[idx] == cur_level {
            count += 1;
            idx += 1;
        }
        used += count;
        let next_level = if idx < sorted.len() { sorted[idx] } else { 0 };
        let gap = cur_level - next_level;
        // Carry up by `gap` halvings: ⌈used / 2^gap⌉, exactness tracked.
        if gap >= 64 {
            // used ≤ n + 1 < 2^63 ⇒ the carry is 1 unless used = 0.
            exact = exact && used == 0;
            used = u64::from(used != 0);
        } else if gap > 0 {
            let div = 1u64 << gap;
            if !used.is_multiple_of(div) {
                exact = false;
            }
            used = used.div_ceil(div);
        }
        cur_level = next_level;
    }
    (used, exact)
}

/// The minimal number of binary trees realizing a *monotone or bitonic*
/// pattern: `⌈Σ 2^{-l_i}⌉` (1 means a single tree exists).
pub fn minimal_forest_size(levels: &[u32]) -> u64 {
    kraft_ceil_exact(levels).0
}

/// Kraft feasibility (Lemma 7.1/7.2): does `Σ 2^{-l_i} ≤ 1` hold?
pub fn kraft_feasible(levels: &[u32]) -> bool {
    kraft_ceil_exact(levels).0 <= 1
}

/// Is `Σ 2^{-l_i}` exactly 1 — i.e. is the pattern realizable by a
/// *full* tree (every internal node binary)?
pub fn kraft_complete(levels: &[u32]) -> bool {
    let (c, exact) = kraft_ceil_exact(levels);
    c == 1 && exact
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct f64 reference, valid for small levels.
    fn kraft_f64(levels: &[u32]) -> f64 {
        levels.iter().map(|&l| 2f64.powi(-(l as i32))).sum()
    }

    #[test]
    fn empty_pattern() {
        assert_eq!(kraft_ceil_exact(&[]), (0, true));
        assert!(kraft_feasible(&[]));
        assert!(!kraft_complete(&[]));
    }

    #[test]
    fn single_leaf_at_root() {
        assert_eq!(kraft_ceil_exact(&[0]), (1, true));
        assert!(kraft_complete(&[0]));
    }

    #[test]
    fn balanced_tree_is_complete() {
        assert!(kraft_complete(&[2, 2, 2, 2]));
        assert!(kraft_complete(&[1, 2, 2]));
        assert!(kraft_complete(&[1, 1]));
    }

    #[test]
    fn underfull_is_feasible_not_complete() {
        assert!(kraft_feasible(&[2, 2, 2]));
        assert!(!kraft_complete(&[2, 2, 2]));
        assert_eq!(minimal_forest_size(&[2, 2, 2]), 1);
    }

    #[test]
    fn overfull_detected() {
        assert!(!kraft_feasible(&[1, 1, 1]));
        assert_eq!(minimal_forest_size(&[1, 1, 1]), 2);
        assert!(!kraft_feasible(&[2, 2, 2, 2, 2]));
        assert_eq!(minimal_forest_size(&[0, 0, 3]), 3);
    }

    #[test]
    fn matches_f64_reference_on_random_patterns() {
        for seed in 0..50 {
            let p = partree_core::gen::full_tree_pattern(40, seed);
            let (c, exact) = kraft_ceil_exact(&p);
            assert_eq!(c, 1, "full tree pattern, seed={seed}");
            assert!(exact, "full tree pattern is exactly 1, seed={seed}");
            assert!((kraft_f64(&p) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_subsets_match_f64() {
        use rand::Rng;
        let mut r = partree_core::gen::rng(1234);
        for _ in 0..100 {
            let n = r.gen_range(1..30);
            let levels: Vec<u32> = (0..n).map(|_| r.gen_range(0..12)).collect();
            let (c, exact) = kraft_ceil_exact(&levels);
            let f = kraft_f64(&levels);
            assert_eq!(c, f.ceil() as u64, "levels={levels:?}");
            assert_eq!(
                exact,
                (f - f.round()).abs() < 1e-9 && f.fract() == 0.0,
                "levels={levels:?}"
            );
        }
    }

    #[test]
    fn huge_levels_do_not_overflow() {
        // Two leaves at depth 10^6: sum = 2^{-999999}·… — ceil is 1,
        // inexact; arithmetic must stay in u64.
        let levels = vec![1_000_000, 1_000_000, 1_000_000];
        let (c, exact) = kraft_ceil_exact(&levels);
        assert_eq!(c, 1);
        assert!(!exact);
        assert!(kraft_feasible(&levels));
    }

    #[test]
    fn huge_levels_exact_pair() {
        // 2^64 + gap handling: a pair at depth 100 carried up 100 levels:
        // exact halving once, then inexact single carry.
        let (c, exact) = kraft_ceil_exact(&[100, 100]);
        assert_eq!(c, 1);
        assert!(!exact); // 2^{-99} < 1 strictly
        let (c, _) = kraft_ceil_exact(&[100, 100, 0]);
        assert_eq!(c, 2);
    }

    #[test]
    fn mixed_gap_carries() {
        // levels 5,5,5,2: sum = 3/32 + 1/4 = 11/32 → ceil 1, inexact.
        let (c, exact) = kraft_ceil_exact(&[5, 5, 5, 2]);
        assert_eq!(c, 1);
        assert!(!exact);
        // levels 3,3,3,3,3,3,3,3 = 1 exactly.
        assert!(kraft_complete(&[3; 8]));
    }
}
