//! Brute-force ground truth for small alphabets.
//!
//! Both optimizing families (minimax, choosable-edge) admit the same
//! exhaustive check: enumerate every *depth multiset* a full binary
//! tree over `n` leaves can realize — recursively, as the two child
//! subtrees' multisets shifted by the chosen edge lengths — then score
//! each multiset with the family's objective under the optimal
//! weight↔depth pairing. For a sum objective that pairing is
//! heaviest-to-shallowest by the rearrangement inequality; for the
//! minimax objective the same pairing is optimal by a two-element
//! exchange (swapping a lighter-shallow/heavier-deep pair never raises
//! the max). The multiset count is tiny for `n ≤ 7` — depth profiles
//! collapse the Catalan-many shapes — so the differential tests can
//! afford exact optima as hard assertions.

use std::collections::BTreeSet;

/// Largest alphabet the oracles accept; enumeration beyond this is
/// pointlessly slow for a test oracle.
pub const MAX_ORACLE_ALPHABET: usize = 7;

/// All depth multisets (sorted ascending) of full binary trees with
/// `n` leaves, where each internal node draws its two edge lengths
/// from `pairs` (either orientation).
fn depth_multisets(n: usize, pairs: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut memo: Vec<Option<Vec<Vec<u32>>>> = vec![None; n + 1];
    fill(n, pairs, &mut memo);
    memo[n].take().unwrap()
}

fn fill(n: usize, pairs: &[(u32, u32)], memo: &mut Vec<Option<Vec<Vec<u32>>>>) {
    if memo[n].is_some() {
        return;
    }
    if n == 1 {
        memo[1] = Some(vec![vec![0]]);
        return;
    }
    let mut out: BTreeSet<Vec<u32>> = BTreeSet::new();
    for left in 1..n {
        let right = n - left;
        fill(left, pairs, memo);
        fill(right, pairs, memo);
        let lhs = memo[left].clone().unwrap();
        let rhs = memo[right].clone().unwrap();
        for &(e1, e2) in pairs {
            for orient in [(e1, e2), (e2, e1)] {
                for dl in &lhs {
                    for dr in &rhs {
                        let mut merged: Vec<u32> = dl
                            .iter()
                            .map(|&d| d + orient.0)
                            .chain(dr.iter().map(|&d| d + orient.1))
                            .collect();
                        merged.sort_unstable();
                        out.insert(merged);
                    }
                }
            }
        }
    }
    memo[n] = Some(out.into_iter().collect());
}

/// Weights sorted heaviest-first — the optimal assignment order for
/// depths sorted ascending, under both objectives.
fn weights_desc(counts: &[u32]) -> Vec<u64> {
    let mut w: Vec<u64> = counts.iter().map(|&c| u64::from(c)).collect();
    w.sort_unstable_by(|a, b| b.cmp(a));
    w
}

/// Exact optimal minimax cost `min over trees of maxᵢ (wᵢ + depthᵢ)`
/// with unit edges, by exhaustive depth-multiset enumeration. `n ≤ 7`.
pub fn minimax_optimal_cost(counts: &[u32]) -> u64 {
    let n = counts.len();
    assert!((2..=MAX_ORACLE_ALPHABET).contains(&n));
    let w = weights_desc(counts);
    depth_multisets(n, &[(1, 1)])
        .iter()
        .map(|depths| {
            depths
                .iter()
                .zip(&w)
                .map(|(&d, &wt)| wt + u64::from(d))
                .max()
                .unwrap()
        })
        .min()
        .unwrap()
}

/// Exact optimal choosable-edge cost `min over trees of Σ wᵢ·depthᵢ`
/// under an edge-length pair system, by exhaustive depth-multiset
/// enumeration. `n ≤ 7`.
pub fn choosable_optimal_cost(counts: &[u32], pairs: &[(u32, u32)]) -> u64 {
    let n = counts.len();
    assert!((2..=MAX_ORACLE_ALPHABET).contains(&n));
    let w = weights_desc(counts);
    depth_multisets(n, pairs)
        .iter()
        .map(|depths| {
            depths
                .iter()
                .zip(&w)
                .map(|(&d, &wt)| wt * u64::from(d))
                .sum::<u64>()
        })
        .min()
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choosable::EDGE_PAIRS;

    #[test]
    fn unit_pair_multisets_are_classic_tree_profiles() {
        // n=2: only {1,1}. n=3: only {1,2,2}. n=4: {2,2,2,2} and
        // {1,2,3,3} (and permuted spines collapse into them).
        assert_eq!(depth_multisets(2, &[(1, 1)]), vec![vec![1, 1]]);
        assert_eq!(depth_multisets(3, &[(1, 1)]), vec![vec![1, 2, 2]]);
        let d4 = depth_multisets(4, &[(1, 1)]);
        assert_eq!(d4, vec![vec![1, 2, 3, 3], vec![2, 2, 2, 2]]);
    }

    #[test]
    fn minimax_oracle_on_hand_checked_cases() {
        // Equal weights: balanced tree, cost w + ⌈log₂ n⌉.
        assert_eq!(minimax_optimal_cost(&[5, 5]), 6);
        assert_eq!(minimax_optimal_cost(&[5, 5, 5, 5]), 7);
        // One dominant weight: it must sit at depth 1 → cost 101.
        assert_eq!(minimax_optimal_cost(&[100, 1, 1, 1]), 101);
    }

    #[test]
    fn choosable_oracle_on_hand_checked_cases() {
        // Two symbols: {2,2} costs 2(w₀+w₁); {1,3} costs w₀+3w₁.
        assert_eq!(choosable_optimal_cost(&[5, 5], &EDGE_PAIRS), 20);
        assert_eq!(choosable_optimal_cost(&[10, 1], &EDGE_PAIRS), 13);
        // Equal quadruple: depths {3,3,4,5} (three {1,3} nodes) cost
        // 15, beating the all-{2,2} balanced tree's 16.
        assert_eq!(choosable_optimal_cost(&[1, 1, 1, 1], &EDGE_PAIRS), 15);
    }

    #[test]
    fn oracles_agree_with_the_fast_implementations() {
        let cases: [&[u32]; 4] = [&[9, 4, 2, 1], &[7, 7, 7], &[0, 3, 11], &[6, 5, 4, 3, 2, 1]];
        for counts in cases {
            let l = crate::minimax::minimax_lengths(counts);
            assert_eq!(
                crate::minimax::minimax_cost(counts, &l),
                minimax_optimal_cost(counts),
                "minimax {counts:?}"
            );
            let l = crate::choosable::choosable_lengths(counts).unwrap();
            assert_eq!(
                crate::family::weighted_sum(counts, &l),
                choosable_optimal_cost(counts, &EDGE_PAIRS),
                "choosable {counts:?}"
            );
        }
    }
}
