//! Minimax trees: code lengths minimizing `maxᵢ (wᵢ + lᵢ)`.
//!
//! Golumbic's *combinatorial merging* is Huffman's greedy with the
//! combine rule swapped: merging nodes of values `a ≤ b` produces a
//! parent of value `max(a, b) + 1 = b + 1`, and repeatedly merging the
//! two globally smallest values yields a tree whose root value
//! `maxᵢ (wᵢ + depthᵢ)` is optimal for integer weights. (Gawrychowski–
//! Gagie, arXiv 0812.2868, push the real-weight variant to `O(n)` on
//! sorted input; the integer case here is the classic result.)
//!
//! The implementation is the standard two-queue linear pass over
//! sorted leaves: created parents are non-decreasing — a parent's
//! value `b + 1` is at least the value of anything popped before it —
//! so a FIFO of parents stays sorted and each merge is `O(1)`.
//! Ties break on `(value, creation order)`, with leaves created in
//! `(weight, symbol index)` order, so the tree — and therefore every
//! emitted length — is deterministic.

use partree_pram::CostTracer;
use rayon::prelude::*;

/// Minimax code lengths for `counts`, in symbol order. The caller
/// guarantees at least two symbols (family-layer validation).
pub fn minimax_lengths(counts: &[u32]) -> Vec<u32> {
    minimax_lengths_traced(counts, &CostTracer::disabled())
}

/// [`minimax_lengths`] with tracing: a `sort` span (the `⌈log₂ n⌉`
/// PRAM merge-sort rounds it stands in for) and a `merge` span for the
/// linear two-queue pass (`n − 1` merges; inherently sequential here,
/// so work and depth are both `n − 1`).
pub fn minimax_lengths_traced(counts: &[u32], tracer: &CostTracer) -> Vec<u32> {
    let n = counts.len();
    debug_assert!(n >= 2);

    let sort = tracer.span("sort");
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&s| (counts[s], s));
    sort.add_work(n as u64);
    sort.add_depth(u64::from(usize::BITS - n.saturating_sub(1).leading_zeros()));

    let merge = tracer.span("merge");
    // Nodes 0..n are the sorted leaves; parents append after them.
    // parent[v] links each merged node to its parent for the final
    // depth sweep.
    let mut value: Vec<u64> = order.iter().map(|&s| u64::from(counts[s])).collect();
    let mut parent: Vec<usize> = Vec::with_capacity(2 * n - 1);
    parent.resize(n, usize::MAX);

    let mut leaf_at = 0usize; // next unmerged leaf (indices 0..n)
    let mut node_at = n; // next unmerged parent (indices n..)
    for _ in 0..n - 1 {
        let pop = |value: &Vec<u64>, leaf_at: &mut usize, node_at: &mut usize| {
            // Leaves win ties: they were created earlier.
            if *leaf_at < n && (*node_at >= value.len() || value[*leaf_at] <= value[*node_at]) {
                *leaf_at += 1;
                *leaf_at - 1
            } else {
                *node_at += 1;
                *node_at - 1
            }
        };
        let a = pop(&value, &mut leaf_at, &mut node_at);
        let b = pop(&value, &mut leaf_at, &mut node_at);
        let v = value[a].max(value[b]) + 1;
        let p = value.len();
        value.push(v);
        parent.push(usize::MAX);
        parent[a] = p;
        parent[b] = p;
    }
    merge.add_work((n - 1) as u64);
    merge.add_depth((n - 1) as u64);

    // Depth of each sorted leaf = parent-chain hops to the root, then
    // un-sort back to symbol order.
    let root = value.len() - 1;
    let mut depth = vec![0u32; value.len()];
    // Parents have larger indices than both children, so a reverse
    // index sweep sees every parent before its children.
    for v in (0..value.len() - 1).rev() {
        depth[v] = depth[parent[v]] + 1;
    }
    debug_assert_eq!(depth[root], 0);
    let mut lengths = vec![0u32; n];
    for (sorted_idx, &sym) in order.iter().enumerate() {
        lengths[sym] = depth[sorted_idx];
    }
    lengths
}

/// The minimax objective `maxᵢ (wᵢ + lᵢ)` in exact integer arithmetic.
pub fn minimax_cost(counts: &[u32], lengths: &[u32]) -> u64 {
    counts
        .par_iter()
        .zip(lengths.par_iter())
        .map(|(&w, &l)| u64::from(w) + u64::from(l))
        .reduce(|| 0u64, u64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partree_trees::kraft::kraft_feasible;

    #[test]
    fn equal_weights_give_a_balanced_tree() {
        let l = minimax_lengths(&[5, 5, 5, 5]);
        assert_eq!(l, vec![2, 2, 2, 2]);
        assert_eq!(minimax_cost(&[5, 5, 5, 5], &l), 7);
    }

    #[test]
    fn heavy_symbol_floats_to_the_root() {
        let counts = [100u32, 1, 1, 1];
        let l = minimax_lengths(&counts);
        assert_eq!(l[0], 1, "heaviest symbol shallowest: {l:?}");
        assert_eq!(minimax_cost(&counts, &l), 101);
        assert!(kraft_feasible(&l));
    }

    #[test]
    fn zero_weights_sink_deepest_but_stay_feasible() {
        let counts = [0u32, 0, 9, 4];
        let l = minimax_lengths(&counts);
        assert!(kraft_feasible(&l), "{l:?}");
        assert!(l[0] >= l[2] && l[1] >= l[2]);
    }

    #[test]
    fn deterministic_under_permuted_ties() {
        // All-equal weights: ties everywhere; output must be stable.
        let a = minimax_lengths(&[3; 7]);
        let b = minimax_lengths(&[3; 7]);
        assert_eq!(a, b);
        assert!(kraft_feasible(&a));
    }

    #[test]
    fn geometric_weights_build_a_spine() {
        // 1,2,4,8,…: merging two smallest chains left-to-right.
        let counts = [1u32, 2, 4, 8, 16];
        let l = minimax_lengths(&counts);
        assert!(kraft_feasible(&l), "{l:?}");
        // Lightest symbols deepest, monotone in weight.
        for w in l.windows(2) {
            assert!(w[0] >= w[1], "{l:?}");
        }
    }
}
