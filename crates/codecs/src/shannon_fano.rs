//! Exact integer Shannon–Fano lengths over histogram counts
//! (Theorem 7.4 / §7.3, service-facing variant).
//!
//! `partree_codes::shannon_fano` works on `f64` weights and builds the
//! full tree. The service only needs *lengths* — realization is the
//! shared canonical pipeline (itself the Theorem 7.1 monotone
//! leaf-pattern builder) — so this module computes
//! `lᵢ = ⌈log₂(W/wᵢ)⌉` in exact `u64` arithmetic: the smallest `l`
//! with `wᵢ·2^l ≥ W`, found by doubling. No float rounding can ever
//! flip a length, which is what makes the family deterministic enough
//! to key a distributed cache.
//!
//! **Zero counts** are floored to one occurrence first. Shannon–Fano's
//! length rule needs positive weights; a zero-weight symbol contributes
//! nothing to expected length wherever it lands, so the floor only
//! fixes *where* it lands — and keeps Kraft feasibility by the usual
//! argument (`Σ 2^{-lᵢ} ≤ Σ wᵢ'/W' = 1` over the floored weights).

use partree_pram::CostTracer;
use rayon::prelude::*;

/// Shannon–Fano code lengths for `counts`, in symbol order. The caller
/// guarantees at least two symbols and one nonzero count (the family
/// layer validates).
pub fn sf_lengths(counts: &[u32]) -> Vec<u32> {
    let total: u64 = counts.iter().map(|&c| u64::from(c.max(1))).sum();
    counts
        .iter()
        .map(|&c| ideal_length(u64::from(c.max(1)), total))
        .collect()
}

/// [`sf_lengths`] with tracing: one `sf_lengths` span covering the
/// per-symbol length computation — a single PRAM round (`O(1)` depth,
/// the doubling loop is `O(log W)` local work per processor), run as a
/// parallel sweep on the rayon shim.
pub fn sf_lengths_traced(counts: &[u32], tracer: &CostTracer) -> Vec<u32> {
    let span = tracer.span("sf_lengths");
    let total: u64 = counts.iter().map(|&c| u64::from(c.max(1))).sum();
    let owned: Vec<u32> = counts.to_vec();
    let lengths: Vec<u32> = owned
        .into_par_iter()
        .map(|c| ideal_length(u64::from(c.max(1)), total))
        .collect();
    span.step(counts.len() as u64);
    lengths
}

/// The smallest `l` with `w · 2^l ≥ total`, i.e. `⌈log₂(total/w)⌉`,
/// by doubling. `w ≥ 1` and `total < 2⁴⁰` bound the loop at 40 turns.
fn ideal_length(w: u64, total: u64) -> u32 {
    debug_assert!(w >= 1 && w <= total);
    let mut l = 0u32;
    let mut scaled = w;
    while scaled < total {
        scaled <<= 1;
        l += 1;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use partree_trees::kraft::kraft_feasible;

    #[test]
    fn matches_the_float_reference_on_positive_counts() {
        let cases: [&[u32]; 4] = [
            &[4, 2, 1, 1],
            &[45, 13, 12, 16, 9, 5],
            &[1, 1000],
            &[3, 3, 3, 3, 3, 3, 3],
        ];
        for counts in cases {
            let ours = sf_lengths(counts);
            let weights: Vec<f64> = counts.iter().map(|&c| f64::from(c)).collect();
            let reference = partree_codes::shannon_fano::shannon_fano(&weights).unwrap();
            assert_eq!(ours, reference.lengths, "counts {counts:?}");
        }
    }

    #[test]
    fn dyadic_counts_hit_ideal_lengths() {
        assert_eq!(sf_lengths(&[4, 2, 1, 1]), vec![1, 2, 3, 3]);
        assert_eq!(sf_lengths(&[1, 1]), vec![1, 1]);
    }

    #[test]
    fn zero_counts_are_floored_and_stay_kraft_feasible() {
        let l = sf_lengths(&[0, 0, 5, 1]);
        assert!(kraft_feasible(&l), "{l:?}");
        // The floor makes zeros behave like unit counts.
        assert_eq!(l, sf_lengths(&[1, 1, 5, 1]));
        // Nonzero symbols keep sane lengths.
        assert!(l[2] <= l[3]);
    }

    #[test]
    fn traced_path_is_identical_and_opens_the_span() {
        let counts = [9u32, 3, 0, 1, 7];
        let t = CostTracer::named("sf");
        assert_eq!(sf_lengths_traced(&counts, &t), sf_lengths(&counts));
        let snap = t.snapshot();
        let span = snap.find("sf_lengths").expect("span opened");
        assert_eq!(span.work, counts.len() as u64);
    }

    #[test]
    fn worst_case_length_is_bounded_by_40() {
        let mut counts = vec![u32::MAX; 256];
        counts[0] = 1;
        let l = sf_lengths(&counts);
        assert!(l.iter().all(|&x| x <= 40), "{:?}", l.iter().max());
        assert!(kraft_feasible(&l));
    }
}
