//! Generalized Huffman with choosable edge lengths (Maßberg, arXiv
//! 1402.3435), for the pair system `{1,3} / {2,2}`.
//!
//! Every internal node picks the lengths of its two child edges from a
//! fixed set of pairs; the objective is the usual `Σ wᵢ·depthᵢ` with
//! depth measured in *edge length* units. With the unit pair `{1,1}`
//! this degenerates to classic Huffman; the `{1,3}/{2,2}` system is
//! the smallest genuinely two-sided instance — a node either balances
//! its children (`2,2`) or trades one fast edge for one slow one
//! (`1,3`) — so the optimizer faces a real choice at every node.
//!
//! ## Algorithm
//!
//! An exact level-synchronous DP over *open slots*, the standard
//! technique for unequal letter costs. A state after processing level
//! `l` is `(m, a, b, c)`: `m` leaves placed so far, and `a/b/c` open
//! slots at levels `l+1 / l+2 / l+3` (3 is the longest edge, so no
//! slot can be born further ahead). At each level every current slot
//! either becomes a leaf or an internal node with a chosen pair, and
//! the transition charges the total weight of still-unplaced leaves —
//! summing those charges over levels telescopes to `Σ wᵢ·depthᵢ`.
//!
//! Weights are placed heaviest-first (an exchange argument: for any
//! fixed multiset of leaf depths, pairing sorted-descending weights
//! with sorted-ascending depths minimizes the sum), so a state never
//! needs to remember *which* leaves were placed, only how many.
//! Dominated states are pruned: a live state needs
//! `1 ≤ a+b+c ≤ n−m` (every open slot must eventually host at least
//! one leaf — dangling slots never help, since deleting a dangling
//! slot's parent only raises its sibling).
//!
//! State count is polynomial in `n` but the constant is real, so the
//! family caps its alphabet at [`MAX_ALPHABET`]; the service surfaces
//! requests beyond the cap as `UnsupportedAlphabet`, mirroring the
//! 256-symbol cap of the binary families.

use partree_core::{Error, Result};
use partree_pram::CostTracer;
use std::collections::BTreeMap;

/// Alphabet cap for the choosable-edge family: the exact DP is
/// `poly(n)` with a real constant (~300 ms at 32 symbols in release
/// even with branch-and-bound), so the family serves small-to-mid
/// alphabets only and relies on the codebook cache for repeats.
pub const MAX_ALPHABET: usize = 32;

/// The edge-length pair system. Each internal node assigns one pair to
/// its two child edges (either orientation).
pub const EDGE_PAIRS: [(u32, u32); 2] = [(1, 3), (2, 2)];

/// `(m, a, b, c)`: leaves placed, open slots at the next three levels.
type State = (u16, u16, u16, u16);

/// Optimal choosable-edge code lengths for `counts`, in symbol order.
pub fn choosable_lengths(counts: &[u32]) -> Result<Vec<u32>> {
    choosable_lengths_traced(counts, &CostTracer::disabled())
}

/// [`choosable_lengths`] with tracing: a `sort` span for the
/// weight ordering and a `level_dp` span whose depth is the number of
/// levels swept (states within a level expand independently — one
/// PRAM round per level) and whose work is the transitions examined.
pub fn choosable_lengths_traced(counts: &[u32], tracer: &CostTracer) -> Result<Vec<u32>> {
    let n = counts.len();
    debug_assert!((2..=MAX_ALPHABET).contains(&n));

    let sort = tracer.span("sort");
    // Heaviest first; index breaks ties so the order — and with it the
    // symbol↔depth pairing — is deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| counts[y].cmp(&counts[x]).then(x.cmp(&y)));
    sort.add_work(n as u64);
    sort.add_depth(u64::from(usize::BITS - n.saturating_sub(1).leading_zeros()));

    // suffix[m] = total weight of the leaves still unplaced once the m
    // heaviest are down — the per-level charge.
    let mut suffix = vec![0u64; n + 1];
    for m in (0..n).rev() {
        suffix[m] = suffix[m + 1] + u64::from(counts[order[m]]);
    }

    let dp = tracer.span("level_dp");
    let max_level = longest_edge() as usize * (n - 1);
    let mut frontier: BTreeMap<State, u64> = BTreeMap::new();
    frontier.insert((0, 1, 0, 0), 0);
    // preds[l] maps a level-(l+1) state to (level-l predecessor, k):
    // the transition placed k leaves at depth l.
    let mut preds: Vec<BTreeMap<State, (State, u16)>> = Vec::with_capacity(max_level + 1);
    let mut best: Option<(u64, usize)> = None; // (cost, completion level)
    let mut transitions = 0u64;

    // Branch-and-bound incumbent: doubling every Shannon–Fano length
    // realizes the same binary tree with all-{2,2} pairs, so twice its
    // cost is a valid choosable-edge tree cost. Charges never decrease
    // along a path, so any state whose prefix cost already *exceeds*
    // the incumbent cannot start an optimal completion — the optimal
    // path itself survives because each of its prefixes costs at most
    // the optimum, which is at most the incumbent.
    let sf = crate::shannon_fano::sf_lengths(counts);
    let mut bound: u64 = 2 * crate::family::weighted_sum(counts, &sf);

    for level in 0..=max_level {
        let mut next: BTreeMap<State, u64> = BTreeMap::new();
        let mut pred: BTreeMap<State, (State, u16)> = BTreeMap::new();
        for (&(m, a, b, c), &cost) in &frontier {
            let remaining = n as u16 - m;
            for k in 0..=a.min(remaining) {
                // t slots pick the {1,3} pair, the rest pick {2,2}.
                for t in 0..=(a - k) {
                    transitions += 1;
                    let two_two = a - k - t;
                    let m2 = m + k;
                    let s = (m2, b + t, c + 2 * two_two, t);
                    let open = s.1 + s.2 + s.3;
                    let cost2 = cost + suffix[m2 as usize];
                    if cost2 > bound {
                        continue;
                    }
                    if m2 == n as u16 {
                        if open == 0 {
                            match best {
                                Some((bc, _)) if bc <= cost2 => {}
                                _ => {
                                    best = Some((cost2, level + 1));
                                    bound = bound.min(cost2);
                                    pred.insert(s, ((m, a, b, c), k));
                                }
                            }
                        }
                        continue;
                    }
                    // Live states: at least one slot, and no more
                    // slots than leaves left to host them.
                    if open == 0 || open > n as u16 - m2 {
                        continue;
                    }
                    match next.get(&s) {
                        Some(&seen) if seen <= cost2 => {}
                        _ => {
                            next.insert(s, cost2);
                            pred.insert(s, ((m, a, b, c), k));
                        }
                    }
                }
            }
        }
        preds.push(pred);
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    dp.add_work(transitions);
    dp.add_depth(preds.len() as u64);

    let (_, end_level) = best.ok_or_else(|| {
        Error::Internal(format!(
            "choosable-edge DP found no complete tree for {n} symbols"
        ))
    })?;

    // Walk the predecessor chain from the completion state back to the
    // root, recovering how many leaves each level took.
    let mut depth_sorted = vec![0u32; n];
    let mut state: State = (n as u16, 0, 0, 0);
    for level in (0..end_level).rev() {
        let &(prev, k) = preds[level]
            .get(&state)
            .ok_or_else(|| Error::Internal("choosable-edge DP predecessor chain broken".into()))?;
        for j in prev.0..prev.0 + k {
            depth_sorted[j as usize] = level as u32;
        }
        state = prev;
    }

    let mut lengths = vec![0u32; n];
    for (sorted_idx, &sym) in order.iter().enumerate() {
        lengths[sym] = depth_sorted[sorted_idx];
    }
    Ok(lengths)
}

/// The longest edge in [`EDGE_PAIRS`] — bounds how far ahead a slot
/// can be born and the deepest useful level.
fn longest_edge() -> u32 {
    let mut max = 0;
    let mut i = 0;
    while i < EDGE_PAIRS.len() {
        let (x, y) = EDGE_PAIRS[i];
        if x > max {
            max = x;
        }
        if y > max {
            max = y;
        }
        i += 1;
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::weighted_sum;
    use partree_trees::kraft::kraft_feasible;

    #[test]
    fn two_symbols_pick_the_cheaper_pair() {
        // Balanced weights: {2,2} costs 2w₀+2w₁; {1,3} costs w₀+3w₁.
        // Equal weights → both cost the same; skew → {1,3} wins.
        let l = choosable_lengths(&[10, 1]).unwrap();
        assert_eq!(l, vec![1, 3], "skewed: fast edge to the heavy symbol");
        let l = choosable_lengths(&[5, 5]).unwrap();
        assert_eq!(weighted_sum(&[5, 5], &l), 20, "either pair costs 20");
    }

    #[test]
    fn lengths_are_kraft_feasible_and_deterministic() {
        let cases: [&[u32]; 5] = [
            &[10, 1],
            &[1, 1, 1, 1],
            &[8, 4, 2, 1, 1],
            &[0, 3, 0, 7],
            &[6, 6, 6, 6, 6, 6, 6, 6],
        ];
        for counts in cases {
            let a = choosable_lengths(counts).unwrap();
            let b = choosable_lengths(counts).unwrap();
            assert_eq!(a, b, "{counts:?}");
            assert!(kraft_feasible(&a), "{counts:?} → {a:?}");
            // Heavier symbols never sit deeper than lighter ones.
            let mut idx: Vec<usize> = (0..counts.len()).collect();
            idx.sort_by(|&x, &y| counts[y].cmp(&counts[x]).then(x.cmp(&y)));
            for w in idx.windows(2) {
                assert!(a[w[0]] <= a[w[1]], "{counts:?} → {a:?}");
            }
        }
    }

    #[test]
    fn uniform_four_symbols_beat_the_balanced_tree() {
        // The {2,2}-only tree puts 4 leaves at depth 4 (cost 16·w) —
        // but mixing pairs does better even for equal weights: depths
        // {3,3,4,5} (root {1,3} plus two {1,3} internals) cost 15.
        let counts = [1u32; 4];
        let l = choosable_lengths(&counts).unwrap();
        assert_eq!(weighted_sum(&counts, &l), 15, "{l:?}");
    }

    #[test]
    fn traced_path_is_identical_and_opens_spans() {
        let counts = [9u32, 4, 2, 1, 1];
        let t = CostTracer::named("choosable");
        let traced = choosable_lengths_traced(&counts, &t).unwrap();
        assert_eq!(traced, choosable_lengths(&counts).unwrap());
        let snap = t.snapshot();
        assert!(snap.find("level_dp").unwrap().work > 0);
        assert!(snap.find("sort").is_some());
    }

    #[test]
    fn mid_size_alphabets_complete() {
        let counts: Vec<u32> = (1..=32).map(|i| i * i).collect();
        let l = choosable_lengths(&counts).unwrap();
        assert!(kraft_feasible(&l));
        assert_eq!(l.len(), 32);
    }
}
