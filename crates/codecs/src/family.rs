//! Code families: the identity tags, the construction trait, and the
//! family-tagged cache key.
//!
//! A **family** maps a histogram to canonical code lengths under its
//! own objective. The service keys codebooks (tier-0 cache, tier-1
//! store records, gateway HRW routing) by [`FamilyId::tagged_key`], so
//! two families never collide on the same histogram — and the Huffman
//! tag is the *identity* mapping, which keeps every pre-existing store
//! record and routing decision exactly where it was.

use crate::{choosable, minimax, shannon_fano};
use partree_core::{Error, Result};
use partree_pram::CostTracer;

/// Identifies one code family on the wire, in cache keys, and in store
/// records. The numeric tags are a stable protocol contract: `Huffman`
/// is 0 so every legacy artifact (v1 store records, untagged warm-up
/// entries) reads back as the family it was built by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum FamilyId {
    /// Classic Huffman — minimize `Σ wᵢ·lᵢ` (the default, tag 0).
    #[default]
    Huffman = 0,
    /// Shannon–Fano (Theorem 7.4) — `lᵢ = ⌈log₂(W/wᵢ)⌉`, within one
    /// bit of Huffman in expected length (Claim 7.1).
    ShannonFano = 1,
    /// Minimax trees — minimize `maxᵢ (wᵢ + lᵢ)` (arXiv 0812.2868).
    Minimax = 2,
    /// Generalized Huffman with choosable edge lengths drawn from the
    /// pair system `{1,3}/{2,2}` (arXiv 1402.3435).
    ChoosableEdge = 3,
}

/// Number of families (array-of-counters dimension in the metrics).
pub const FAMILY_COUNT: usize = 4;

impl FamilyId {
    /// All families, in tag order.
    pub const ALL: [FamilyId; FAMILY_COUNT] = [
        FamilyId::Huffman,
        FamilyId::ShannonFano,
        FamilyId::Minimax,
        FamilyId::ChoosableEdge,
    ];

    /// Parses a wire/store tag.
    pub fn from_u8(tag: u8) -> Option<FamilyId> {
        match tag {
            0 => Some(FamilyId::Huffman),
            1 => Some(FamilyId::ShannonFano),
            2 => Some(FamilyId::Minimax),
            3 => Some(FamilyId::ChoosableEdge),
            _ => None,
        }
    }

    /// The wire/store tag.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Dense index for per-family counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short stable name, used in metrics keys and experiment output.
    pub fn name(self) -> &'static str {
        match self {
            FamilyId::Huffman => "huffman",
            FamilyId::ShannonFano => "sf",
            FamilyId::Minimax => "minimax",
            FamilyId::ChoosableEdge => "choosable",
        }
    }

    /// Mixes the family into a histogram hash to form the cache/store/
    /// routing key. Huffman is the **identity**: the tagged key of the
    /// default family equals the raw `Histogram::hash64`, so tier-1
    /// records written by Huffman-only builds keep their keys and HRW
    /// placement. Other families pass through a splitmix64 finalizer
    /// seeded by the tag, which spreads them over the whole key space
    /// (per-family HRW routing falls out of the same `home()` function
    /// unchanged).
    pub fn tagged_key(self, histogram_hash: u64) -> u64 {
        if self == FamilyId::Huffman {
            return histogram_hash;
        }
        let mut z = histogram_hash ^ (u64::from(self.tag()).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl std::fmt::Display for FamilyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One code family: histogram counts in, canonical code lengths out.
///
/// Contract shared by every implementation:
///
/// * **Determinism** — same counts, same lengths, bit for bit, at any
///   pool width. The service's first-insert-wins cache and the fleet's
///   bit-identical-response guarantee both rest on this.
/// * **Kraft feasibility** — returned lengths always satisfy
///   `Σ 2^{-lᵢ} ≤ 1`, so canonical realization downstream cannot fail
///   for structural reasons.
/// * **`lengths_traced` ≡ `lengths`** — the traced parallel path and
///   the sequential reference return identical vectors; the traced
///   variant only adds span accounting (and may use the rayon shim).
pub trait CodeFamily: Send + Sync {
    /// The family's identity tag.
    fn id(&self) -> FamilyId;

    /// Largest alphabet the family accepts. Requests beyond it are
    /// `UnsupportedAlphabet` at the service layer, not a panic here.
    fn max_alphabet(&self) -> usize;

    /// Upper bound on any length this family can emit for `n` symbols
    /// with `u32` counts — the per-family depth bound the cost model
    /// and the wire's one-byte length encoding rely on.
    fn depth_bound(&self, n: usize) -> u32;

    /// Sequential reference: code length per symbol, in symbol order.
    fn lengths(&self, counts: &[u32]) -> Result<Vec<u32>>;

    /// The traced parallel path: identical output to
    /// [`CodeFamily::lengths`], with per-phase work/depth spans opened
    /// on `tracer`.
    fn lengths_traced(&self, counts: &[u32], tracer: &CostTracer) -> Result<Vec<u32>>;

    /// The family's cost model evaluated on a candidate length vector:
    /// `Σ wᵢ·lᵢ` for the sum-objective families, `maxᵢ (wᵢ + lᵢ)` for
    /// minimax. Exact integer arithmetic.
    fn cost(&self, counts: &[u32], lengths: &[u32]) -> u64;
}

/// Validates a histogram against a family's alphabet bounds. Shared by
/// the family implementations so they reject exactly alike.
pub(crate) fn check_counts(counts: &[u32], max_alphabet: usize) -> Result<()> {
    if counts.len() < 2 {
        return Err(Error::invalid("need at least two symbols"));
    }
    if counts.len() > max_alphabet {
        return Err(Error::invalid(format!(
            "alphabet size {} exceeds this family's cap of {max_alphabet}",
            counts.len()
        )));
    }
    if counts.iter().all(|&c| c == 0) {
        return Err(Error::invalid("histogram has no nonzero count"));
    }
    Ok(())
}

/// `Σ wᵢ·lᵢ` in exact `u64` arithmetic (counts are `u32`, lengths stay
/// below 256, alphabets below 257 — no overflow possible).
pub(crate) fn weighted_sum(counts: &[u32], lengths: &[u32]) -> u64 {
    counts
        .iter()
        .zip(lengths)
        .map(|(&w, &l)| u64::from(w) * u64::from(l))
        .sum()
}

struct HuffmanFamily;

impl CodeFamily for HuffmanFamily {
    fn id(&self) -> FamilyId {
        FamilyId::Huffman
    }

    fn max_alphabet(&self) -> usize {
        256
    }

    fn depth_bound(&self, n: usize) -> u32 {
        n.saturating_sub(1) as u32
    }

    // The parallel algorithm *is* the reference for this family: the
    // service has always served its lengths, and sequential Huffman
    // (`partree_huffman::sequential`) can legally pick a different
    // optimal tree. Cost-equality between the two is pinned in
    // partree-huffman's own tests.
    fn lengths(&self, counts: &[u32]) -> Result<Vec<u32>> {
        check_counts(counts, self.max_alphabet())?;
        let weights: Vec<f64> = counts.iter().map(|&c| f64::from(c)).collect();
        Ok(partree_huffman::parallel::huffman_parallel(&weights)?.lengths)
    }

    fn lengths_traced(&self, counts: &[u32], tracer: &CostTracer) -> Result<Vec<u32>> {
        check_counts(counts, self.max_alphabet())?;
        let weights: Vec<f64> = counts.iter().map(|&c| f64::from(c)).collect();
        Ok(partree_huffman::parallel::huffman_parallel_traced(&weights, tracer)?.lengths)
    }

    fn cost(&self, counts: &[u32], lengths: &[u32]) -> u64 {
        weighted_sum(counts, lengths)
    }
}

struct ShannonFanoFamily;

impl CodeFamily for ShannonFanoFamily {
    fn id(&self) -> FamilyId {
        FamilyId::ShannonFano
    }

    fn max_alphabet(&self) -> usize {
        256
    }

    fn depth_bound(&self, _n: usize) -> u32 {
        // ⌈log₂(256 · 2³²)⌉ = 40: the worst case is one unit count
        // against a total near 2⁴⁰.
        40
    }

    fn lengths(&self, counts: &[u32]) -> Result<Vec<u32>> {
        check_counts(counts, self.max_alphabet())?;
        Ok(shannon_fano::sf_lengths(counts))
    }

    fn lengths_traced(&self, counts: &[u32], tracer: &CostTracer) -> Result<Vec<u32>> {
        check_counts(counts, self.max_alphabet())?;
        Ok(shannon_fano::sf_lengths_traced(counts, tracer))
    }

    fn cost(&self, counts: &[u32], lengths: &[u32]) -> u64 {
        weighted_sum(counts, lengths)
    }
}

struct MinimaxFamily;

impl CodeFamily for MinimaxFamily {
    fn id(&self) -> FamilyId {
        FamilyId::Minimax
    }

    fn max_alphabet(&self) -> usize {
        256
    }

    fn depth_bound(&self, n: usize) -> u32 {
        n.saturating_sub(1) as u32
    }

    fn lengths(&self, counts: &[u32]) -> Result<Vec<u32>> {
        check_counts(counts, self.max_alphabet())?;
        Ok(minimax::minimax_lengths(counts))
    }

    fn lengths_traced(&self, counts: &[u32], tracer: &CostTracer) -> Result<Vec<u32>> {
        check_counts(counts, self.max_alphabet())?;
        Ok(minimax::minimax_lengths_traced(counts, tracer))
    }

    fn cost(&self, counts: &[u32], lengths: &[u32]) -> u64 {
        minimax::minimax_cost(counts, lengths)
    }
}

struct ChoosableEdgeFamily;

impl CodeFamily for ChoosableEdgeFamily {
    fn id(&self) -> FamilyId {
        FamilyId::ChoosableEdge
    }

    fn max_alphabet(&self) -> usize {
        choosable::MAX_ALPHABET
    }

    fn depth_bound(&self, n: usize) -> u32 {
        // The longest edge in the pair system is 3.
        3 * n.saturating_sub(1) as u32
    }

    fn lengths(&self, counts: &[u32]) -> Result<Vec<u32>> {
        check_counts(counts, self.max_alphabet())?;
        choosable::choosable_lengths(counts)
    }

    fn lengths_traced(&self, counts: &[u32], tracer: &CostTracer) -> Result<Vec<u32>> {
        check_counts(counts, self.max_alphabet())?;
        choosable::choosable_lengths_traced(counts, tracer)
    }

    fn cost(&self, counts: &[u32], lengths: &[u32]) -> u64 {
        weighted_sum(counts, lengths)
    }
}

static HUFFMAN: HuffmanFamily = HuffmanFamily;
static SHANNON_FANO: ShannonFanoFamily = ShannonFanoFamily;
static MINIMAX: MinimaxFamily = MinimaxFamily;
static CHOOSABLE: ChoosableEdgeFamily = ChoosableEdgeFamily;

/// The registry: one shared implementation per [`FamilyId`].
pub fn family(id: FamilyId) -> &'static dyn CodeFamily {
    match id {
        FamilyId::Huffman => &HUFFMAN,
        FamilyId::ShannonFano => &SHANNON_FANO,
        FamilyId::Minimax => &MINIMAX,
        FamilyId::ChoosableEdge => &CHOOSABLE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partree_trees::kraft::kraft_feasible;

    #[test]
    fn tags_roundtrip_and_reject_garbage() {
        for f in FamilyId::ALL {
            assert_eq!(FamilyId::from_u8(f.tag()), Some(f));
            assert_eq!(family(f).id(), f);
            assert_eq!(FamilyId::ALL[f.index()], f);
        }
        assert_eq!(FamilyId::from_u8(4), None);
        assert_eq!(FamilyId::from_u8(0xFF), None);
        assert_eq!(FamilyId::default(), FamilyId::Huffman);
    }

    #[test]
    fn huffman_tagged_key_is_identity_and_others_spread() {
        let hashes = [0u64, 1, 0xDEAD_BEEF, u64::MAX, 0x1234_5678_9ABC_DEF0];
        for &h in &hashes {
            assert_eq!(FamilyId::Huffman.tagged_key(h), h);
            let mut keys: Vec<u64> = FamilyId::ALL.iter().map(|f| f.tagged_key(h)).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 4, "families collide on hash {h:#x}");
        }
        // Deterministic across calls.
        assert_eq!(
            FamilyId::Minimax.tagged_key(42),
            FamilyId::Minimax.tagged_key(42)
        );
    }

    #[test]
    fn every_family_emits_kraft_feasible_deterministic_lengths() {
        let cases: [&[u32]; 5] = [
            &[45, 13, 12, 16, 9, 5],
            &[1, 1],
            &[1, 2, 4, 8, 16],
            &[0, 0, 5, 1],
            &[7; 16],
        ];
        for f in FamilyId::ALL {
            for counts in cases {
                let a = family(f).lengths(counts).unwrap();
                let b = family(f).lengths(counts).unwrap();
                let t = family(f)
                    .lengths_traced(counts, &CostTracer::named("t"))
                    .unwrap();
                assert_eq!(a, b, "{f} nondeterministic on {counts:?}");
                assert_eq!(a, t, "{f} traced path diverges on {counts:?}");
                assert!(kraft_feasible(&a), "{f} infeasible on {counts:?}: {a:?}");
                assert_eq!(a.len(), counts.len());
                let bound = family(f).depth_bound(counts.len());
                assert!(
                    a.iter().all(|&l| l <= bound),
                    "{f} exceeds depth bound {bound} on {counts:?}: {a:?}"
                );
            }
        }
    }

    #[test]
    fn families_reject_bad_histograms() {
        for f in FamilyId::ALL {
            assert!(family(f).lengths(&[5]).is_err(), "{f} took 1 symbol");
            assert!(family(f).lengths(&[0, 0]).is_err(), "{f} took all-zero");
            let too_big = vec![1u32; family(f).max_alphabet() + 1];
            assert!(family(f).lengths(&too_big).is_err(), "{f} took oversized");
        }
    }
}
