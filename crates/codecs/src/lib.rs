//! # partree-codecs
//!
//! Multiple tree-construction *code families* behind one trait, so the
//! service layer can serve more than classic Huffman.
//!
//! The paper's Theorem 7.4 already gives a second workload: Shannon–
//! Fano codes, built in parallel via the monotone leaf-pattern pipeline
//! and within one bit of Huffman (Claim 7.1). Two more families come
//! from the follow-on literature the roadmap names: **minimax trees**
//! (Golumbic's combinatorial merging; Gawrychowski–Gagie, arXiv
//! 0812.2868) minimize the *maximum* `wᵢ + lᵢ` instead of the sum, and
//! **choosable-edge Huffman** (Maßberg, arXiv 1402.3435) generalizes
//! the two unit edges of a binary code node to a chosen pair of edge
//! lengths — here the pair system `{1,3}` / `{2,2}`.
//!
//! Every family maps a histogram (`&[u32]` counts) to canonical code
//! *lengths*. Realization — canonical code, decoder tables, trees — is
//! shared downstream (`partree-codes`), exactly like the Huffman path:
//! lengths are the interchange format, and each family guarantees its
//! lengths satisfy Kraft's inequality so realization cannot fail.
//!
//! * [`family`] — [`FamilyId`], the [`CodeFamily`] trait, the registry,
//!   and the family-tagged cache key;
//! * [`shannon_fano`] — exact integer Shannon–Fano lengths (§7.3);
//! * [`minimax`] — two-queue combinatorial merging, `max(a,b)+1` rule;
//! * [`choosable`] — level-synchronous DP over open slots for the
//!   `{1,3}/{2,2}` edge-length pair system;
//! * [`oracle`] — brute-force optima for small alphabets, the ground
//!   truth the differential tests pin each family against.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod choosable;
pub mod family;
pub mod minimax;
pub mod oracle;
pub mod shannon_fano;

pub use family::{family, CodeFamily, FamilyId, FAMILY_COUNT};
