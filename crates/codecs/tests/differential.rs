//! Differential tests pinning each code family against independent
//! ground truth:
//!
//! * Shannon–Fano expected length is within one bit of Huffman's
//!   (Claim 7.1: `E_sf < H + 1 ≤ E_huff + 1`, so in integer form
//!   `Σ wᵢ·l_sf ≤ Σ wᵢ·l_huff + W`);
//! * minimax and choosable-edge costs equal the brute-force optimum
//!   over *all* tree shapes for small alphabets;
//! * every family's lengths are bit-identical across 1/2/8-thread
//!   rayon pools — the property that lets a length vector key a
//!   distributed cache.

use partree_codecs::choosable::EDGE_PAIRS;
use partree_codecs::oracle::{choosable_optimal_cost, minimax_optimal_cost};
use partree_codecs::{family, FamilyId};
use partree_trees::kraft::kraft_feasible;
use proptest::prelude::*;

fn weighted(counts: &[u32], lengths: &[u32]) -> u64 {
    counts
        .iter()
        .zip(lengths)
        .map(|(&c, &l)| u64::from(c) * u64::from(l))
        .sum()
}

proptest! {
    // The choosable-edge DP is the expensive piece (branch-and-bound
    // exact search); 64 cases keeps the whole file under ~30 s debug.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shannon_fano_within_one_bit_of_huffman(
        counts in proptest::collection::vec(1u32..10_000, 2..40),
    ) {
        let sf = family(FamilyId::ShannonFano).lengths(&counts).unwrap();
        let huff = family(FamilyId::Huffman).lengths(&counts).unwrap();
        prop_assert!(kraft_feasible(&sf));
        let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        prop_assert!(
            weighted(&counts, &sf) <= weighted(&counts, &huff) + total,
            "SF {} vs Huffman {} + W {}",
            weighted(&counts, &sf),
            weighted(&counts, &huff),
            total,
        );
    }

    #[test]
    fn minimax_matches_brute_force_optimum(
        counts in proptest::collection::vec(0u32..50, 2..=7),
    ) {
        let lengths = family(FamilyId::Minimax).lengths(&counts);
        // All-zero histograms are rejected at the family layer; any
        // other small histogram must be exactly optimal.
        prop_assume!(counts.iter().any(|&c| c > 0));
        let lengths = lengths.unwrap();
        prop_assert!(kraft_feasible(&lengths));
        let cost = family(FamilyId::Minimax).cost(&counts, &lengths);
        prop_assert_eq!(cost, minimax_optimal_cost(&counts), "{:?}", counts);
    }

    #[test]
    fn choosable_matches_brute_force_optimum(
        counts in proptest::collection::vec(0u32..50, 2..=7),
    ) {
        prop_assume!(counts.iter().any(|&c| c > 0));
        let lengths = family(FamilyId::ChoosableEdge).lengths(&counts).unwrap();
        prop_assert!(kraft_feasible(&lengths));
        let cost = family(FamilyId::ChoosableEdge).cost(&counts, &lengths);
        prop_assert_eq!(
            cost,
            choosable_optimal_cost(&counts, &EDGE_PAIRS),
            "{:?}", counts
        );
    }

    #[test]
    fn all_families_are_thread_width_invariant(
        counts in proptest::collection::vec(0u32..1000, 2..=12),
    ) {
        prop_assume!(counts.iter().any(|&c| c > 0));
        for id in FamilyId::ALL {
            let fam = family(id);
            let reference = fam.lengths(&counts).unwrap();
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let inside = pool.install(|| fam.lengths(&counts)).unwrap();
                prop_assert_eq!(
                    &inside, &reference,
                    "{} diverged at {} threads", fam.id(), threads
                );
            }
        }
    }
}
