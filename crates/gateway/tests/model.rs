//! Model-check suite for the gateway breaker. Only compiled under
//! `--cfg partree_model`:
//!
//! ```text
//! RUSTFLAGS="--cfg partree_model" cargo test -p partree-gateway --test model
//! ```
#![cfg(partree_model)]

use partree_gateway::model;
use partree_verify::explore;

#[test]
fn breaker_scenarios_are_clean_and_exhaustive() {
    let mut total = 0usize;
    for s in model::scenarios() {
        let report = explore(s.name, s.cfg, s.body);
        assert!(
            report.passed(),
            "{}: unexpected violation {:?}",
            s.name,
            report.violation
        );
        assert!(
            report.complete,
            "{}: DFS cut off after {} executions — raise max_executions or shrink the scenario",
            s.name, report.executions
        );
        // Breaker methods are single coarse mutex sections, so some
        // two-thread scenarios are exhaustively tiny — the floor only
        // guards against a scenario degenerating to fully sequential.
        assert!(
            report.executions > 4,
            "{}: only {} interleavings — scenario has no real concurrency",
            s.name, report.executions
        );
        total += report.executions;
    }
    println!("breaker model suite: {total} distinct interleavings across all scenarios");
    assert!(total > 200, "suite shrank to {total} interleavings");
}
