//! Property tests for the circuit breaker against a reference state
//! machine, driven through the gateway's *real* outcome classifier
//! (`breaker_counts_as_failure`) — so the liveness line the module docs
//! promise ("backpressure never opens the breaker") is tested as wired,
//! not as restated.

use partree_gateway::breaker::{Breaker, BreakerConfig, BreakerState};
use partree_gateway::gateway::breaker_counts_as_failure;
use partree_service::frame::{ErrorCode, Response};
use proptest::prelude::*;
use std::io;
use std::time::Duration;

/// One replica outcome, as `attempt_once` would see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A served request (encode/decode/stats answered).
    Ok,
    /// Backpressure: the replica is alive but shedding (`Busy`).
    Busy,
    /// Backpressure: the replica answered with a server-side `Timeout`.
    Timeout,
    /// Liveness failure: the replica said it is going away.
    ShuttingDown,
    /// Liveness failure: transport error (dial refused, broken pipe).
    Transport,
}

impl Event {
    fn outcome(self) -> io::Result<Response> {
        match self {
            Event::Ok => Ok(Response::Pong { draining: false }),
            Event::Busy => Ok(Response::Busy),
            Event::Timeout => Ok(Response::Timeout),
            Event::ShuttingDown => Ok(Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "draining".to_string(),
            }),
            Event::Transport => Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused")),
        }
    }

    fn is_liveness_failure(self) -> bool {
        matches!(self, Event::ShuttingDown | Event::Transport)
    }
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::Ok),
        Just(Event::Busy),
        Just(Event::Timeout),
        Just(Event::ShuttingDown),
        Just(Event::Transport),
    ]
}

/// Reference model of the breaker: the documented state machine,
/// reimplemented independently of `breaker.rs`.
struct Reference {
    threshold: u32,
    state: BreakerState,
    run: u32,
    opened: u64,
}

impl Reference {
    fn new(threshold: u32) -> Reference {
        Reference {
            threshold,
            state: BreakerState::Closed,
            run: 0,
            opened: 0,
        }
    }

    fn feed(&mut self, failure: bool) {
        if failure {
            self.run += 1;
            let trip = match self.state {
                BreakerState::Closed => self.run >= self.threshold,
                BreakerState::HalfOpen => true,
                BreakerState::Open => false,
            };
            if trip {
                self.state = BreakerState::Open;
                self.opened += 1;
            }
        } else {
            self.run = 0;
            self.state = BreakerState::Closed;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary outcome streams, classified by the real gateway rule,
    /// drive the breaker exactly like the reference machine: same state
    /// and same open count after every event. With an effectively
    /// infinite cooldown the time axis is frozen, so the comparison is
    /// exact. In particular: streams free of liveness failures never
    /// open the breaker — `Busy`/`Timeout` backpressure cannot amputate
    /// capacity.
    #[test]
    fn breaker_tracks_reference_machine(
        threshold in 1u32..5,
        events in prop::collection::vec(event_strategy(), 0..64),
    ) {
        let b = Breaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_cooldown: Duration::from_secs(3600),
        });
        let mut reference = Reference::new(threshold);
        for &ev in &events {
            let failure = breaker_counts_as_failure(&ev.outcome());
            prop_assert_eq!(
                failure,
                ev.is_liveness_failure(),
                "classifier drew the liveness line wrong for {:?}",
                ev
            );
            if failure {
                b.record_failure();
            } else {
                b.record_success();
            }
            reference.feed(failure);
            prop_assert_eq!(b.state(), reference.state, "after {:?}", ev);
            prop_assert_eq!(b.opened_total(), reference.opened, "after {:?}", ev);
            // Routing view: closed allows, open (within cooldown) blocks.
            match reference.state {
                BreakerState::Closed => prop_assert!(b.allow()),
                BreakerState::Open => prop_assert!(!b.allow()),
                BreakerState::HalfOpen => unreachable!("feed never parks in half-open"),
            }
        }
        if events.iter().all(|e| !e.is_liveness_failure()) {
            prop_assert_eq!(b.opened_total(), 0, "backpressure opened the breaker");
            prop_assert!(b.allow());
        }
    }

    /// Across random open/probe episodes: each half-open episode admits
    /// exactly one probe no matter how many callers ask, and the probe's
    /// resolution (random success/failure) either re-closes or re-opens
    /// for the next episode.
    #[test]
    fn half_open_admits_exactly_one_probe(
        // Packed episode: low bit = probe outcome, high bits = caller
        // count (the vendored proptest has no tuple strategies).
        episodes in prop::collection::vec(0usize..12, 1..20),
    ) {
        let b = Breaker::new(BreakerConfig {
            failure_threshold: 1,
            open_cooldown: Duration::ZERO,
        });
        b.record_failure(); // open; zero cooldown arms the first probe
        for &ep in &episodes {
            let (callers, probe_succeeds) = (ep / 2 + 1, ep % 2 == 1);
            let admitted: usize = (0..callers).map(|_| b.allow() as usize).sum();
            prop_assert_eq!(admitted, 1, "probe slot admitted {} of {}", admitted, callers);
            prop_assert_eq!(b.state(), BreakerState::HalfOpen);
            if probe_succeeds {
                b.record_success();
                prop_assert_eq!(b.state(), BreakerState::Closed);
                b.record_failure(); // re-arm the next episode
            } else {
                b.record_failure();
            }
            prop_assert_eq!(b.state(), BreakerState::Open);
        }
    }
}
