//! The router itself: deadline-budgeted attempts over a rendezvous
//! preference order, with bounded retries, one hedge, and health-gated
//! replica selection.
//!
//! ## Attempt lifecycle
//!
//! Each codec request walks its key's preference order. Attempts run on
//! their own thread (the blocking client pins one request to one
//! connection) and report back over a channel; the router's event loop
//! decides what each outcome means:
//!
//! | outcome                         | class     | breaker        |
//! |---------------------------------|-----------|----------------|
//! | `Encoded`/`Decoded`/`Stats`     | terminal  | success        |
//! | `Error` (malformed, bad symbol…)| terminal  | success        |
//! | `Busy`                          | retryable | success        |
//! | `Timeout` (server-side)         | retryable | success        |
//! | `Error(ShuttingDown)`           | retryable | **failure**    |
//! | transport `io::Error`           | retryable | **failure**    |
//!
//! The split in the last column is deliberate: `Busy`/`Timeout` prove
//! the replica is alive (it parsed the frame and answered), so they
//! must not open the breaker — only liveness failures do.
//!
//! ## Hedging
//!
//! If the first attempt has not answered after an adaptive threshold —
//! `max(hedge_after_min, 3 × EWMA of successful attempt latency)`, or
//! `deadline / 4` before any data exists — one hedge is launched at the
//! next replica in the preference order and the first response wins.
//! The loser's thread finishes on its own, recording its replica's
//! metrics and returning its connection itself, because the event loop
//! may already have returned to the caller.
//!
//! ## Determinism
//!
//! The gateway adds no compute: a response that arrives is byte-for-byte
//! what the serving replica produced, and every replica produces
//! identical bytes for identical requests (the service's determinism
//! contract). Retries, failover, and hedging therefore never change
//! *what* is returned, only *which* replica returns it.

use crate::breaker::{Breaker, BreakerConfig, BreakerState};
use crate::metrics::{Metrics, ReplicaMetrics, ReplicaSnapshot};
use crate::pool::ConnPool;
use crate::reactor::RpcClient;
use crate::route::{home, preference_order};
use partree_service::frame::{ErrorCode, Histogram, Request, Response, WarmEntry};
use partree_service::net::Transport;
use partree_service::FamilyId;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Router tunables. `new` fills in defaults sized for loopback
/// replicas; every field is public for tests and experiments.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Replica addresses; index in this list is the replica id.
    pub addrs: Vec<SocketAddr>,
    /// Total per-request budget: attempts, backoff, and hedging all
    /// spend from it.
    pub deadline: Duration,
    /// Extra attempts allowed after the first (hedges not counted).
    pub max_retries: u32,
    /// First backoff step; doubles per retry up to `backoff_cap`.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Floor for the adaptive hedge threshold.
    pub hedge_after_min: Duration,
    /// Idle connections kept per replica.
    pub pool_cap: usize,
    /// TCP connect budget per attempt (also the probe io timeout).
    pub connect_timeout: Duration,
    /// Per-replica breaker tunables.
    pub breaker: BreakerConfig,
    /// Health-probe period.
    pub probe_interval: Duration,
    /// Attempt engine: `Blocking` pins each attempt to its own thread
    /// and a blocking client; `Reactor` multiplexes every attempt on
    /// one shared epoll thread. Defaults from `PARTREE_TRANSPORT` so
    /// one environment variable A/Bs the gateway and the service
    /// together.
    pub transport: Transport,
    /// Most codebooks donated to a recovered replica before its
    /// breaker re-closes (fleet warm-up). `0` disables warm-up.
    pub warmup_keys: usize,
    /// Most breaker-closed donors whose hot sets are merged (deduped
    /// on family-tagged keys) into one warm-up push. More donors see
    /// more of the fleet's heat at the cost of extra `HotSet` fetches
    /// per recovery. Defaults from `PARTREE_WARM_DONORS` (2 when
    /// unset); `0` disables warm-up.
    pub warm_donors: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl GatewayConfig {
    /// Defaults for a loopback fleet at `addrs`.
    pub fn new(addrs: Vec<SocketAddr>) -> GatewayConfig {
        GatewayConfig {
            addrs,
            deadline: Duration::from_secs(2),
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            hedge_after_min: Duration::from_millis(1),
            pool_cap: 8,
            connect_timeout: Duration::from_millis(500),
            breaker: BreakerConfig::default(),
            probe_interval: Duration::from_millis(100),
            transport: Transport::from_env(),
            warmup_keys: 32,
            warm_donors: env_usize("PARTREE_WARM_DONORS", 2),
        }
    }
}

/// One replica as the gateway sees it.
#[derive(Debug)]
struct Replica {
    id: usize,
    addr: SocketAddr,
    pool: ConnPool,
    breaker: Breaker,
    metrics: ReplicaMetrics,
    /// Last drain bit reported by a probe or inferred from `Busy`-free
    /// traffic; draining replicas are skipped while alternatives exist.
    draining: AtomicBool,
}

impl Replica {
    /// Eligible for new attempts: breaker allows (this call performs
    /// the open → half-open transition when the cooldown has elapsed)
    /// and the replica is not draining.
    fn healthy(&self) -> bool {
        !self.draining.load(Ordering::Relaxed) && self.breaker.allow()
    }
}

struct Inner {
    cfg: GatewayConfig,
    replicas: Vec<Replica>,
    metrics: Metrics,
    /// EWMA of successful data-attempt latency, µs (0 = no data yet).
    ewma_us: AtomicU64,
    /// Set by [`Gateway::drain`]: new requests are shed as `Busy`.
    draining: AtomicBool,
    /// Set by shutdown: stops the prober thread.
    stopped: AtomicBool,
    /// Codec requests currently inside [`Gateway::request`].
    inflight: AtomicU64,
    /// Attempts currently alive (including hedge losers): threads on
    /// the blocking transport, outstanding reactor calls otherwise.
    attempt_threads: AtomicU64,
    /// Jitter state for backoff.
    jitter_seed: AtomicU64,
    /// The shared attempt reactor; `Some` iff
    /// `cfg.transport == Transport::Reactor`.
    rpc: Option<RpcClient>,
}

impl Inner {
    fn next_jitter(&self) -> u64 {
        let mut x = self.jitter_seed.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_seed.store(x, Ordering::Relaxed);
        x
    }

    /// `base·2^(retry-1)` capped, jittered into `[½, 1]×`, clamped to
    /// the remaining budget.
    fn backoff(&self, retry: u32, remaining: Duration) -> Duration {
        let exp = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << (retry.saturating_sub(1)).min(16))
            .min(self.cfg.backoff_cap);
        let jitter = self.next_jitter() % 1024;
        let d = exp / 2 + exp.mul_f64(jitter as f64 / 2048.0);
        d.min(remaining)
    }

    fn observe_latency(&self, us: u64) {
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { old - old / 8 + us / 8 };
        self.ewma_us.store(new.max(1), Ordering::Relaxed);
    }

    fn hedge_threshold(&self) -> Duration {
        let ewma = self.ewma_us.load(Ordering::Relaxed);
        if ewma == 0 {
            self.cfg.deadline / 4
        } else {
            Duration::from_micros(ewma.saturating_mul(3)).max(self.cfg.hedge_after_min)
        }
    }
}

/// What one attempt thread reports back to the event loop.
struct AttemptReport {
    replica: usize,
    hedge: bool,
    outcome: io::Result<Response>,
}

/// How the event loop treats a response.
#[derive(PartialEq, Eq)]
enum Class {
    Terminal,
    Retryable,
}

fn classify(resp: &Response) -> Class {
    match resp {
        Response::Busy | Response::Timeout => Class::Retryable,
        Response::Error {
            code: ErrorCode::ShuttingDown,
            ..
        } => Class::Retryable,
        _ => Class::Terminal,
    }
}

/// The sharded replica router. Cheap to share (`request` takes `&self`)
/// — open one per fleet, not one per thread.
pub struct Gateway {
    inner: Arc<Inner>,
    prober: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("replicas", &self.inner.replicas.len())
            .finish()
    }
}

impl Gateway {
    /// Builds the router and starts its background health prober.
    /// Connections are dialed lazily; replicas may come up after this
    /// call (their breakers simply stay open until a probe succeeds).
    pub fn start(cfg: GatewayConfig) -> Gateway {
        assert!(!cfg.addrs.is_empty(), "gateway needs at least one replica");
        let replicas = cfg
            .addrs
            .iter()
            .enumerate()
            .map(|(id, &addr)| Replica {
                id,
                addr,
                pool: ConnPool::new(addr, cfg.pool_cap, cfg.connect_timeout),
                breaker: Breaker::new(cfg.breaker),
                metrics: ReplicaMetrics::default(),
                draining: AtomicBool::new(false),
            })
            .collect();
        let rpc = match cfg.transport {
            Transport::Blocking => None,
            Transport::Reactor => Some(
                RpcClient::start(cfg.pool_cap)
                    // lint: allow(no-unwrap): reactor startup happens once at gateway startup; failure there is resource exhaustion before any request exists
                    .expect("start rpc reactor"),
            ),
        };
        let inner = Arc::new(Inner {
            replicas,
            metrics: Metrics::default(),
            ewma_us: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            attempt_threads: AtomicU64::new(0),
            jitter_seed: AtomicU64::new(0x853c_49e6_748f_ea9b),
            rpc,
            cfg,
        });
        let prober = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("gateway-prober".into())
                .spawn(move || prober_loop(&inner))
                // lint: allow(no-unwrap): prober spawn happens once at gateway startup; failure there is resource exhaustion before any request exists
                .expect("spawn prober")
        };
        Gateway {
            inner,
            prober: Some(prober),
        }
    }

    /// Routes one request. Control requests (`Stats`, `Ping`, `Drain`)
    /// are answered by the gateway itself; `Encode`/`Decode` go through
    /// the full retry/hedge machinery. `Err` is transport-level only —
    /// server-side failures arrive as `Response::Error`/`Busy`/`Timeout`
    /// exactly as a direct [`partree_service::client::Client`] would
    /// surface them.
    pub fn request(&self, request: &Request) -> io::Result<Response> {
        match request {
            Request::Stats => Ok(Response::Stats {
                json: self.stats_json(),
            }),
            Request::Ping => Ok(Response::Pong {
                draining: self.inner.draining.load(Ordering::Relaxed),
            }),
            Request::Drain => {
                self.drain();
                Ok(Response::DrainOk)
            }
            // Warm-up frames are replica-to-replica transfers the
            // gateway's own prober issues; routing one *through* the
            // router has no meaningful target replica.
            Request::WarmUp { .. } | Request::HotSet { .. } => Ok(Response::Error {
                code: ErrorCode::Malformed,
                message: "warm-up opcodes address a single replica; \
                          the gateway issues them itself during recovery"
                    .into(),
            }),
            // The routing key is family-tagged (matching the service's
            // cache key), so different families over the same histogram
            // may home on different replicas — each replica then serves
            // its (histogram, family) pair from a warm cache. Huffman's
            // tag is the identity, so legacy traffic routes exactly as
            // before.
            Request::Encode {
                family, histogram, ..
            }
            | Request::Decode {
                family, histogram, ..
            } => self.route_codec(request, *family, family.tagged_key(histogram.hash64())),
            // Delta requests route by the *base* key — already
            // family-tagged, and exactly the key the base's own
            // encode/decode traffic routed on — so the drift lands on
            // the replica whose cache holds the base hot.
            Request::EncodeDelta {
                family, base_key, ..
            }
            | Request::DecodeDelta {
                family, base_key, ..
            } => self.route_codec(request, *family, *base_key),
        }
    }

    /// Encodes `payload` under `histogram`'s classic Huffman code via
    /// the fleet; mirrors [`partree_service::client::Client::encode`].
    pub fn encode(&self, histogram: &Histogram, payload: &[u8]) -> io::Result<(u64, Vec<u8>)> {
        self.encode_with(FamilyId::Huffman, histogram, payload)
    }

    /// Decodes `bit_len` bits of `data` under `histogram`'s classic
    /// Huffman code via the fleet; mirrors
    /// [`partree_service::client::Client::decode`].
    pub fn decode(&self, histogram: &Histogram, bit_len: u64, data: &[u8]) -> io::Result<Vec<u8>> {
        self.decode_with(FamilyId::Huffman, histogram, bit_len, data)
    }

    /// Encodes `payload` under the code `family` builds for `histogram`
    /// via the fleet; mirrors
    /// [`partree_service::client::Client::encode_with`].
    pub fn encode_with(
        &self,
        family: FamilyId,
        histogram: &Histogram,
        payload: &[u8],
    ) -> io::Result<(u64, Vec<u8>)> {
        let resp = self.request(&Request::Encode {
            family,
            histogram: histogram.clone(),
            payload: payload.to_vec(),
        })?;
        match resp {
            Response::Encoded { bit_len, data } => Ok((bit_len, data)),
            other => Err(io::Error::other(format!("expected Encoded, got {other:?}"))),
        }
    }

    /// Decodes `bit_len` bits of `data` under the code `family` builds
    /// for `histogram` via the fleet; mirrors
    /// [`partree_service::client::Client::decode_with`].
    pub fn decode_with(
        &self,
        family: FamilyId,
        histogram: &Histogram,
        bit_len: u64,
        data: &[u8],
    ) -> io::Result<Vec<u8>> {
        let resp = self.request(&Request::Decode {
            family,
            histogram: histogram.clone(),
            bit_len,
            data: data.to_vec(),
        })?;
        match resp {
            Response::Decoded { payload } => Ok(payload),
            other => Err(io::Error::other(format!("expected Decoded, got {other:?}"))),
        }
    }

    /// Encodes `payload` against a drift of the base codebook named by
    /// `base_key` via the fleet; mirrors
    /// [`partree_service::client::Client::encode_delta`]. Returns
    /// `(path, bit_len, bytes)` with `path` the `DeltaPath` tag
    /// (0 = patched, 1 = rebuilt by the serving replica).
    pub fn encode_delta(
        &self,
        family: FamilyId,
        base_key: u64,
        deltas: &[(u16, i32)],
        payload: &[u8],
    ) -> io::Result<(u8, u64, Vec<u8>)> {
        let resp = self.request(&Request::EncodeDelta {
            family,
            base_key,
            deltas: deltas.to_vec(),
            payload: payload.to_vec(),
        })?;
        match resp {
            Response::DeltaEncoded {
                path,
                bit_len,
                data,
            } => Ok((path, bit_len, data)),
            other => Err(io::Error::other(format!(
                "expected DeltaEncoded, got {other:?}"
            ))),
        }
    }

    /// Decodes `bit_len` bits of `data` under the drifted codebook
    /// named by `(base_key, deltas)` via the fleet; mirrors
    /// [`partree_service::client::Client::decode_delta`].
    pub fn decode_delta(
        &self,
        family: FamilyId,
        base_key: u64,
        deltas: &[(u16, i32)],
        bit_len: u64,
        data: &[u8],
    ) -> io::Result<Vec<u8>> {
        let resp = self.request(&Request::DecodeDelta {
            family,
            base_key,
            deltas: deltas.to_vec(),
            bit_len,
            data: data.to_vec(),
        })?;
        match resp {
            Response::Decoded { payload } => Ok(payload),
            other => Err(io::Error::other(format!("expected Decoded, got {other:?}"))),
        }
    }

    /// Stops accepting new requests (they are shed as `Busy`);
    /// in-flight requests complete. Irreversible.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::Relaxed);
    }

    /// Drains, waits for in-flight requests and attempt threads (hedge
    /// losers included) to finish, stops the prober, and closes every
    /// pooled connection. Waits at most `deadline + 1s` past the drain
    /// before giving up on stragglers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.drain();
        let give_up = Instant::now() + self.inner.cfg.deadline + Duration::from_secs(1);
        while (self.inner.inflight.load(Ordering::Relaxed) > 0
            || self.inner.attempt_threads.load(Ordering::Relaxed) > 0)
            && Instant::now() < give_up
        {
            thread::sleep(Duration::from_millis(1));
        }
        self.inner.stopped.store(true, Ordering::Relaxed);
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
        for r in &self.inner.replicas {
            r.pool.clear();
        }
        if let Some(rpc) = &self.inner.rpc {
            // Straggler calls complete with a shutdown error via their
            // drop guards as the reactor unwinds.
            rpc.shutdown_in_place();
        }
    }

    /// Current counters, breaker states, and latency histograms.
    pub fn snapshot(&self) -> crate::metrics::GatewaySnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let rows = self
            .inner
            .replicas
            .iter()
            .map(|r| ReplicaSnapshot {
                id: r.id,
                addr: r.addr.to_string(),
                attempts: get(&r.metrics.attempts),
                successes: get(&r.metrics.successes),
                transport_errors: get(&r.metrics.transport_errors),
                busy: get(&r.metrics.busy),
                pings_ok: get(&r.metrics.pings_ok),
                pings_failed: get(&r.metrics.pings_failed),
                latency: r
                    .metrics
                    .latency
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                latency_us_total: get(&r.metrics.latency_us_total),
                latency_us_max: get(&r.metrics.latency_us_max),
                breaker: r.breaker.state(),
                breaker_opened: r.breaker.opened_total(),
                draining: r.draining.load(Ordering::Relaxed),
            })
            .collect();
        self.inner.metrics.snapshot(rows)
    }

    /// [`Gateway::snapshot`] as JSON (schema in `EXPERIMENTS.md` § E15).
    pub fn stats_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Number of replicas in the fleet.
    pub fn replica_count(&self) -> usize {
        self.inner.replicas.len()
    }

    /// The routing event loop for one codec request.
    fn route_codec(&self, request: &Request, family: FamilyId, key: u64) -> io::Result<Response> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Relaxed) {
            inner
                .metrics
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return Ok(Response::Busy);
        }
        inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
        inner.metrics.family_requests[family.index()].fetch_add(1, Ordering::Relaxed);
        inner.inflight.fetch_add(1, Ordering::Relaxed);
        let result = self.route_codec_inner(request, key);
        inner.inflight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn route_codec_inner(&self, request: &Request, key: u64) -> io::Result<Response> {
        let inner = &self.inner;
        let n = inner.replicas.len();
        let start = Instant::now();
        let deadline = start + inner.cfg.deadline;
        let order = preference_order(key, n);
        let home = order[0];
        let hedge_at = start + inner.hedge_threshold();
        let request = Arc::new(request.clone());
        let (tx, rx) = mpsc::channel::<AttemptReport>();

        let mut rank = 0usize; // next position in the routing sequence
        let mut in_flight: Vec<usize> = Vec::with_capacity(2);
        let mut retries_used = 0u32;
        let mut hedged = false;

        let first = self.pick(&order, &mut rank, &in_flight);
        self.launch(first, &request, false, deadline, &tx);
        in_flight.push(first);

        loop {
            let now = Instant::now();
            if now >= deadline {
                inner
                    .metrics
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "gateway deadline of {:?} exhausted after {} attempt(s)",
                        inner.cfg.deadline,
                        in_flight.len() as u32 + retries_used
                    ),
                ));
            }
            // Wake at the hedge point while the hedge is still armed,
            // otherwise at the deadline.
            let wait = if !hedged && !in_flight.is_empty() && hedge_at > now {
                (hedge_at - now).min(deadline - now)
            } else {
                deadline - now
            };
            match rx.recv_timeout(wait) {
                Ok(report) => {
                    in_flight.retain(|&r| r != report.replica);
                    match report.outcome {
                        Ok(resp) if classify(&resp) == Class::Terminal => {
                            inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
                            if report.replica != home {
                                inner.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                            }
                            if report.hedge {
                                inner.metrics.hedges_won.fetch_add(1, Ordering::Relaxed);
                            }
                            return Ok(resp);
                        }
                        outcome => {
                            // Retryable: Busy / Timeout / ShuttingDown /
                            // transport error.
                            if retries_used < inner.cfg.max_retries {
                                retries_used += 1;
                                inner.metrics.retries.fetch_add(1, Ordering::Relaxed);
                                // Back off only when nothing is in
                                // flight — otherwise the outstanding
                                // attempt *is* the wait.
                                if in_flight.is_empty() {
                                    let pause = inner.backoff(
                                        retries_used,
                                        deadline.saturating_duration_since(Instant::now()),
                                    );
                                    if !pause.is_zero() {
                                        thread::sleep(pause);
                                    }
                                }
                                let next = self.pick(&order, &mut rank, &in_flight);
                                self.launch(next, &request, false, deadline, &tx);
                                in_flight.push(next);
                            } else if in_flight.is_empty() {
                                // Budget exhausted: surface the failure
                                // as a direct client would.
                                return outcome;
                            }
                            // Budget exhausted but an attempt is still
                            // out — keep waiting for it.
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !hedged && !in_flight.is_empty() && Instant::now() >= hedge_at {
                        hedged = true;
                        inner.metrics.hedges_issued.fetch_add(1, Ordering::Relaxed);
                        let next = self.pick(&order, &mut rank, &in_flight);
                        self.launch(next, &request, true, deadline, &tx);
                        in_flight.push(next);
                    }
                    // Deadline handling happens at the top of the loop.
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("event loop holds a sender")
                }
            }
        }
    }

    /// Next attempt target: walk the preference order (cyclically from
    /// `rank`), preferring healthy replicas not already in flight; if
    /// none qualifies, fall back to any not-in-flight replica (counted
    /// as `no_healthy_replica`), and as a last resort reuse the order
    /// head.
    fn pick(&self, order: &[usize], rank: &mut usize, in_flight: &[usize]) -> usize {
        let inner = &self.inner;
        let n = order.len();
        for _ in 0..n {
            let r = order[*rank % n];
            *rank += 1;
            if !in_flight.contains(&r) && inner.replicas[r].healthy() {
                return r;
            }
        }
        inner
            .metrics
            .no_healthy_replica
            .fetch_add(1, Ordering::Relaxed);
        for _ in 0..n {
            let r = order[*rank % n];
            *rank += 1;
            if !in_flight.contains(&r) {
                return r;
            }
        }
        let r = order[*rank % n];
        *rank += 1;
        r
    }

    /// Launches one attempt. On the blocking transport this spawns a
    /// thread that owns the whole attempt — checkout, request, metrics,
    /// breaker, check-in — so a hedge loser finishes correctly even
    /// after the event loop has returned. On the reactor transport the
    /// attempt is a non-blocking call whose completion callback (run on
    /// the reactor thread, hedge losers included) does the same
    /// accounting through [`account_attempt`].
    fn launch(
        &self,
        replica: usize,
        request: &Arc<Request>,
        hedge: bool,
        deadline: Instant,
        tx: &mpsc::Sender<AttemptReport>,
    ) {
        let thread_inner = Arc::clone(&self.inner);
        let request = Arc::clone(request);
        let thread_tx = tx.clone();
        self.inner.attempt_threads.fetch_add(1, Ordering::Relaxed);
        if let Some(rpc) = &self.inner.rpc {
            let r = &self.inner.replicas[replica];
            r.metrics.attempts.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            rpc.call(
                r.addr,
                request,
                deadline,
                self.inner.cfg.connect_timeout,
                move |outcome| {
                    let outcome = account_attempt(&thread_inner, replica, t0, outcome);
                    let _ = thread_tx.send(AttemptReport {
                        replica,
                        hedge,
                        outcome,
                    });
                    thread_inner.attempt_threads.fetch_sub(1, Ordering::Relaxed);
                },
            );
            return;
        }
        let spawned = thread::Builder::new()
            .name(format!("gateway-attempt-{replica}"))
            .spawn(move || {
                let outcome = run_attempt(&thread_inner, replica, &request, deadline);
                let _ = thread_tx.send(AttemptReport {
                    replica,
                    hedge,
                    outcome,
                });
                thread_inner.attempt_threads.fetch_sub(1, Ordering::Relaxed);
            });
        if let Err(e) = spawned {
            self.inner.attempt_threads.fetch_sub(1, Ordering::Relaxed);
            let _ = tx.send(AttemptReport {
                replica,
                hedge,
                outcome: Err(e),
            });
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        if self.prober.is_some() {
            self.shutdown_in_place();
        }
    }
}

/// One attempt, end to end, on the calling thread.
fn run_attempt(
    inner: &Inner,
    replica: usize,
    request: &Request,
    deadline: Instant,
) -> io::Result<Response> {
    let r = &inner.replicas[replica];
    r.metrics.attempts.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let budget = deadline.saturating_duration_since(t0);
    let result = (|| {
        let mut conn = r
            .pool
            .checkout(Some(budget.max(Duration::from_millis(1))))?;
        let resp = conn.request(request)?;
        // Only a cleanly-answered connection is safe to reuse.
        r.pool.checkin(conn);
        Ok(resp)
    })();
    account_attempt(inner, replica, t0, result)
}

/// The transport-independent tail of an attempt: feeds the breaker and
/// the per-replica counters, then hands the outcome back unchanged.
/// The blocking path runs this on the attempt thread, the reactor path
/// in the completion callback — identical outcomes produce identical
/// breaker transitions and metrics either way.
fn account_attempt(
    inner: &Inner,
    replica: usize,
    t0: Instant,
    result: io::Result<Response>,
) -> io::Result<Response> {
    let r = &inner.replicas[replica];
    if breaker_counts_as_failure(&result) {
        r.breaker.record_failure();
    } else {
        r.breaker.record_success();
    }
    match &result {
        Ok(resp) => match resp {
            Response::Busy | Response::Timeout => {
                r.metrics.busy.fetch_add(1, Ordering::Relaxed);
            }
            Response::Error {
                code: ErrorCode::ShuttingDown,
                ..
            } => {
                r.metrics.transport_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                let us = t0.elapsed().as_micros() as u64;
                r.metrics.successes.fetch_add(1, Ordering::Relaxed);
                r.metrics.record_latency(us);
                inner.observe_latency(us);
            }
        },
        Err(_) => {
            r.metrics.transport_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    result
}

/// The liveness line the module docs promise: transport errors and
/// `ShuttingDown` count as breaker failures; every reachable-replica
/// outcome — including `Busy`/`Timeout` backpressure — counts as a
/// breaker success. Public so the breaker property tests drive this
/// exact classification instead of re-stating it.
pub fn breaker_counts_as_failure(outcome: &io::Result<Response>) -> bool {
    match outcome {
        Ok(Response::Error {
            code: ErrorCode::ShuttingDown,
            ..
        }) => true,
        Ok(_) => false,
        Err(_) => true,
    }
}

/// Background health prober: pings every replica each period, feeding
/// the breakers and the drain flags. Probes bypass `Breaker::allow`,
/// which is how an open breaker learns its replica recovered — one
/// good ping re-closes it without waiting for half-open data traffic.
fn prober_loop(inner: &Arc<Inner>) {
    let io_timeout = Some(inner.cfg.connect_timeout);
    while !inner.stopped.load(Ordering::Relaxed) {
        for r in &inner.replicas {
            if inner.stopped.load(Ordering::Relaxed) {
                return;
            }
            let outcome = match &inner.rpc {
                Some(rpc) => probe_over_rpc(rpc, r.addr, inner.cfg.connect_timeout),
                None => r.pool.checkout(io_timeout).and_then(|mut conn| {
                    let draining = conn.ping()?;
                    r.pool.checkin(conn);
                    Ok(draining)
                }),
            };
            match outcome {
                Ok(draining) => {
                    r.metrics.pings_ok.fetch_add(1, Ordering::Relaxed);
                    r.draining.store(draining, Ordering::Relaxed);
                    // A good ping from a replica whose breaker is not
                    // closed means it just came back (restart or
                    // recovery). Refill its cache from a healthy donor
                    // *before* re-closing the breaker — data traffic
                    // only resumes once `record_success` runs, so the
                    // replica's first real requests land warm.
                    if !draining
                        && inner.cfg.warmup_keys > 0
                        && r.breaker.state() != BreakerState::Closed
                    {
                        warm_up_replica(inner, r);
                    }
                    r.breaker.record_success();
                }
                Err(_) => {
                    r.metrics.pings_failed.fetch_add(1, Ordering::Relaxed);
                    r.breaker.record_failure();
                    // Idle connections to a failing replica are suspect.
                    match &inner.rpc {
                        Some(rpc) => rpc.purge(r.addr),
                        None => r.pool.clear(),
                    }
                }
            }
        }
        // Sleep in short slices so shutdown is prompt.
        let until = Instant::now() + inner.cfg.probe_interval;
        while Instant::now() < until && !inner.stopped.load(Ordering::Relaxed) {
            thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Fleet warm-up: stream healthy donors' hottest codebooks to a
/// replica that just came back, so its first data requests after the
/// breaker re-closes hit a warm cache instead of paying construction
/// (or, with a persistent store, so tier 0 is hot before tier 1 is
/// even consulted).
///
/// Donors are the other breaker-closed, non-draining replicas — up to
/// `warm_donors` of them, their hot sets merged and deduped on the
/// family-tagged key before the single `WarmUp` push, so a key that
/// failed over to different survivors at different times is donated
/// once. Only entries whose rendezvous home is the recovering replica
/// are pushed (those are exactly the keys that failed over *away*
/// from it while it was down, and the keys it will serve again the
/// moment routing resumes). Everything here is best-effort over the
/// blocking client — the protocol is transport-agnostic, and a failed
/// donation changes nothing but the number of cold misses the replica
/// pays later.
fn warm_up_replica(inner: &Inner, target: &Replica) {
    let n = inner.replicas.len();
    let io_timeout = Some(inner.cfg.connect_timeout);
    let max = inner.cfg.warmup_keys;
    let mut entries: Vec<WarmEntry> = Vec::new();
    let mut donors_used = 0usize;
    for donor in &inner.replicas {
        if donors_used >= inner.cfg.warm_donors {
            break;
        }
        if donor.id == target.id
            || donor.draining.load(Ordering::Relaxed)
            || donor.breaker.state() != BreakerState::Closed
        {
            continue;
        }
        let hot = donor.pool.checkout(io_timeout).and_then(|mut conn| {
            let hot = conn.hot_set(max.min(u16::MAX as usize) as u16)?;
            donor.pool.checkin(conn);
            Ok(hot)
        });
        let Ok(hot) = hot else { continue };
        donors_used += 1;
        for e in hot {
            if entries.len() >= max {
                break;
            }
            // Donated entries carry their family; home them on the same
            // family-tagged key the router uses for data traffic, so a
            // recovering replica is warmed with exactly the
            // (histogram, family) pairs it is about to serve.
            let key = e.family.tagged_key(e.histogram.hash64());
            if home(key, n) != target.id {
                continue;
            }
            if entries
                .iter()
                .any(|x| x.family.tagged_key(x.histogram.hash64()) == key)
            {
                continue;
            }
            entries.push(e);
        }
        if entries.len() >= max {
            break;
        }
    }
    if entries.is_empty() {
        return;
    }
    let sent = entries.len() as u64;
    let pushed = target.pool.checkout(io_timeout).and_then(|mut conn| {
        let counts = conn.warm_up(entries)?;
        target.pool.checkin(conn);
        Ok(counts)
    });
    if pushed.is_ok() {
        inner.metrics.warmups.fetch_add(1, Ordering::Relaxed);
        inner
            .metrics
            .warmup_keys_sent
            .fetch_add(sent, Ordering::Relaxed);
    }
}

/// One probe over the shared reactor: a `Ping` call bridged back to the
/// prober thread through a channel. Probes bypass `Breaker::allow` in
/// this mode too — the reactor dials unconditionally.
fn probe_over_rpc(rpc: &RpcClient, addr: SocketAddr, budget: Duration) -> io::Result<bool> {
    let (tx, rx) = mpsc::channel();
    rpc.call(
        addr,
        Arc::new(Request::Ping),
        Instant::now() + budget,
        budget,
        move |outcome| {
            let _ = tx.send(outcome);
        },
    );
    // The reactor enforces the budget itself (deadline sweep); the
    // extra slack only covers its tick granularity. The callback's drop
    // guard guarantees an answer even across reactor shutdown, so a
    // recv timeout here is strictly a backstop.
    match rx.recv_timeout(budget + Duration::from_millis(250)) {
        Ok(Ok(Response::Pong { draining })) => Ok(draining),
        Ok(Ok(other)) => Err(io::Error::other(format!(
            "probe expected Pong, got {other:?}"
        ))),
        Ok(Err(e)) => Err(e),
        Err(_) => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "probe reply never arrived",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partree_service::net::Server;
    use partree_service::server::{Service, ServiceConfig};

    fn fleet(n: usize) -> (Vec<Server>, Vec<SocketAddr>) {
        fleet_on(n, Transport::Blocking)
    }

    fn fleet_on(n: usize, transport: Transport) -> (Vec<Server>, Vec<SocketAddr>) {
        let servers: Vec<Server> = (0..n)
            .map(|_| {
                Server::bind_with(
                    Service::start(ServiceConfig::default()),
                    "127.0.0.1:0",
                    transport,
                )
                .unwrap()
            })
            .collect();
        let addrs = servers.iter().map(|s| s.addr()).collect();
        (servers, addrs)
    }

    fn tiny_cfg(addrs: Vec<SocketAddr>) -> GatewayConfig {
        let mut cfg = GatewayConfig::new(addrs);
        cfg.deadline = Duration::from_secs(2);
        cfg.backoff_base = Duration::from_millis(2);
        cfg.probe_interval = Duration::from_millis(20);
        cfg.breaker.open_cooldown = Duration::from_millis(100);
        cfg
    }

    #[test]
    fn roundtrips_and_matches_direct_service() {
        let (servers, addrs) = fleet(3);
        let gw = Gateway::start(tiny_cfg(addrs));
        let direct = Service::start(ServiceConfig::default());

        for seed in 0u64..20 {
            let payload: Vec<u8> = (0..512).map(|i| ((seed * 31 + i) % 7) as u8).collect();
            let hist = Histogram::of_payload(7, &payload).unwrap();
            let (bits, data) = gw.encode(&hist, &payload).unwrap();
            let via_direct = direct.submit(Request::Encode {
                family: FamilyId::Huffman,
                histogram: hist.clone(),
                payload: payload.clone(),
            });
            match via_direct {
                Response::Encoded {
                    bit_len,
                    data: d_data,
                } => {
                    assert_eq!((bits, &data), (bit_len, &d_data), "gateway == direct");
                }
                other => panic!("direct encode failed: {other:?}"),
            }
            let back = gw.decode(&hist, bits, &data).unwrap();
            assert_eq!(back, payload);
        }

        let snap = gw.snapshot();
        assert_eq!(snap.requests, 40);
        assert_eq!(snap.completed, 40);
        assert_eq!(snap.deadline_exceeded, 0);

        direct.shutdown();
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn same_histogram_routes_to_the_same_replica() {
        let (servers, addrs) = fleet(4);
        let gw = Gateway::start(tiny_cfg(addrs));
        let payload: Vec<u8> = (0..256).map(|i| (i % 5) as u8).collect();
        let hist = Histogram::of_payload(5, &payload).unwrap();
        for _ in 0..10 {
            gw.encode(&hist, &payload).unwrap();
        }
        let snap = gw.snapshot();
        let served: Vec<u64> = snap.replicas.iter().map(|r| r.successes).collect();
        assert_eq!(
            served.iter().sum::<u64>(),
            10,
            "all attempts succeeded: {served:?}"
        );
        assert_eq!(
            served.iter().filter(|&&c| c > 0).count(),
            1,
            "one home shard served everything: {served:?}"
        );
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn dead_replica_fails_over_and_opens_its_breaker() {
        let (mut servers, addrs) = fleet(2);
        let mut cfg = tiny_cfg(addrs);
        // Keep the prober quiet so the breaker is driven by data
        // traffic: the first attempt must actually hit the dead home
        // (recording a retry) rather than be routed around it by a
        // probe that already opened the breaker.
        cfg.probe_interval = Duration::from_secs(30);
        cfg.breaker.failure_threshold = 2;
        let gw = Gateway::start(cfg);

        // Find a histogram homed on replica 0, then kill replica 0.
        let mut homed = None;
        for n in 2u32..40 {
            let payload: Vec<u8> = (0..128).map(|i| (i % n as usize) as u8).collect();
            let hist = Histogram::of_payload(n as usize, &payload).unwrap();
            if preference_order(hist.hash64(), 2)[0] == 0 {
                homed = Some((hist, payload));
                break;
            }
        }
        let (hist, payload) = homed.expect("some histogram homes on replica 0");
        servers.remove(0).shutdown().unwrap();

        let (bits, data) = gw.encode(&hist, &payload).unwrap();
        let back = gw.decode(&hist, bits, &data).unwrap();
        assert_eq!(back, payload);

        let snap = gw.snapshot();
        assert!(snap.failovers >= 1, "winner was not the home: {snap:?}");
        assert!(snap.retries >= 1, "dead home forced a retry: {snap:?}");
        assert!(
            snap.replicas[0].breaker_opened >= 1,
            "breaker opened on the dead replica: {snap:?}"
        );
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn slow_replica_is_hedged_and_the_hedge_wins() {
        let (servers, addrs) = fleet(2);
        let mut cfg = tiny_cfg(addrs);
        cfg.hedge_after_min = Duration::from_millis(1);
        let gw = Gateway::start(cfg);

        // Warm the EWMA so the hedge threshold is data-driven and small.
        let warm: Vec<u8> = (0..64).map(|i| (i % 3) as u8).collect();
        let warm_hist = Histogram::of_payload(3, &warm).unwrap();
        for _ in 0..5 {
            gw.encode(&warm_hist, &warm).unwrap();
        }

        // Find a histogram homed on replica 0 and make replica 0 slow.
        let mut homed = None;
        for n in 2u32..40 {
            let payload: Vec<u8> = (0..128).map(|i| (i % n as usize) as u8).collect();
            let hist = Histogram::of_payload(n as usize, &payload).unwrap();
            if preference_order(hist.hash64(), 2)[0] == 0 {
                homed = Some((hist, payload));
                break;
            }
        }
        let (hist, payload) = homed.unwrap();
        servers[0].faults().set_delay_ms(300);

        let t0 = Instant::now();
        let (bits, data) = gw.encode(&hist, &payload).unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "hedge answered before the slow home: {:?}",
            t0.elapsed()
        );
        let back = gw.decode(&hist, bits, &data).unwrap();
        assert_eq!(back, payload);

        let snap = gw.snapshot();
        assert!(snap.hedges_issued >= 1, "hedge launched: {snap:?}");
        assert!(snap.hedges_won >= 1, "hedge won: {snap:?}");
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn reactor_transport_roundtrips_and_matches_blocking() {
        // Reactor on both sides: the fleet serves over the service
        // reactor, the gateway attempts over the shared rpc reactor.
        let (servers, addrs) = fleet_on(3, Transport::Reactor);
        let mut cfg = tiny_cfg(addrs);
        cfg.transport = Transport::Reactor;
        let gw = Gateway::start(cfg);
        let direct = Service::start(ServiceConfig::default());

        for seed in 0u64..20 {
            let payload: Vec<u8> = (0..512).map(|i| ((seed * 37 + i) % 6) as u8).collect();
            let hist = Histogram::of_payload(6, &payload).unwrap();
            let (bits, data) = gw.encode(&hist, &payload).unwrap();
            match direct.submit(Request::Encode {
                family: FamilyId::Huffman,
                histogram: hist.clone(),
                payload: payload.clone(),
            }) {
                Response::Encoded {
                    bit_len,
                    data: d_data,
                } => assert_eq!(
                    (bits, &data),
                    (bit_len, &d_data),
                    "reactor gateway == direct service"
                ),
                other => panic!("direct encode failed: {other:?}"),
            }
            assert_eq!(gw.decode(&hist, bits, &data).unwrap(), payload);
        }

        let snap = gw.snapshot();
        assert_eq!(snap.requests, 40);
        assert_eq!(snap.completed, 40);
        assert_eq!(snap.deadline_exceeded, 0);
        assert!(
            snap.replicas.iter().any(|r| r.pings_ok > 0),
            "rpc prober reached the fleet: {snap:?}"
        );

        direct.shutdown();
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn reactor_transport_fails_over_around_a_dead_replica() {
        let (mut servers, addrs) = fleet_on(2, Transport::Reactor);
        let mut cfg = tiny_cfg(addrs);
        cfg.probe_interval = Duration::from_secs(30);
        cfg.breaker.failure_threshold = 2;
        cfg.transport = Transport::Reactor;
        let gw = Gateway::start(cfg);

        let mut homed = None;
        for n in 2u32..40 {
            let payload: Vec<u8> = (0..128).map(|i| (i % n as usize) as u8).collect();
            let hist = Histogram::of_payload(n as usize, &payload).unwrap();
            if preference_order(hist.hash64(), 2)[0] == 0 {
                homed = Some((hist, payload));
                break;
            }
        }
        let (hist, payload) = homed.expect("some histogram homes on replica 0");
        servers.remove(0).shutdown().unwrap();

        let (bits, data) = gw.encode(&hist, &payload).unwrap();
        assert_eq!(gw.decode(&hist, bits, &data).unwrap(), payload);

        let snap = gw.snapshot();
        assert!(snap.failovers >= 1, "winner was not the home: {snap:?}");
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn recovered_replica_is_warmed_before_rejoining() {
        let (mut servers, addrs) = fleet(2);
        let mut cfg = tiny_cfg(addrs.clone());
        cfg.probe_interval = Duration::from_millis(20);
        cfg.breaker.failure_threshold = 1;
        cfg.breaker.open_cooldown = Duration::from_millis(50);
        let gw = Gateway::start(cfg);

        // A histogram homed on replica 0.
        let mut homed = None;
        for n in 2u32..40 {
            let payload: Vec<u8> = (0..128).map(|i| (i % n as usize) as u8).collect();
            let hist = Histogram::of_payload(n as usize, &payload).unwrap();
            if preference_order(hist.hash64(), 2)[0] == 0 {
                homed = Some((hist, payload));
                break;
            }
        }
        let (hist, payload) = homed.expect("some histogram homes on replica 0");

        // Kill the home; traffic fails over to replica 1, which builds
        // the codebook and accumulates tier-0 hits on it.
        servers.remove(0).shutdown().unwrap();
        let expected = gw.encode(&hist, &payload).unwrap();
        for _ in 0..4 {
            assert_eq!(gw.encode(&hist, &payload).unwrap(), expected);
        }

        // Revive replica 0 on the same address, empty-cached.
        let svc0 = Service::start(ServiceConfig::default());
        let revived = Server::bind_with(svc0.clone(), &addrs[0].to_string(), Transport::Blocking)
            .expect("rebind the killed replica's address");

        // The prober notices, warms it from replica 1, then re-closes
        // the breaker.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline && gw.snapshot().warmups == 0 {
            thread::sleep(Duration::from_millis(10));
        }
        let snap = gw.snapshot();
        assert!(snap.warmups >= 1, "no warm-up round ran: {snap:?}");
        assert!(snap.warmup_keys_sent >= 1, "no keys donated: {snap:?}");
        assert!(
            svc0.metrics().warmup_accepted >= 1,
            "revived replica adopted nothing: {:?}",
            svc0.metrics()
        );

        // Once routing resumes, the home serves the adopted codebook
        // bit-identically — without ever constructing it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline && svc0.metrics().encoded == 0 {
            assert_eq!(gw.encode(&hist, &payload).unwrap(), expected);
        }
        let m0 = svc0.metrics();
        assert!(m0.encoded >= 1, "home never rejoined routing: {m0:?}");
        assert_eq!(m0.constructions, 0, "warm cache: no construction: {m0:?}");

        gw.shutdown();
        revived.shutdown().unwrap();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn families_route_independently_and_are_counted() {
        let (servers, addrs) = fleet(3);
        let gw = Gateway::start(tiny_cfg(addrs));
        let direct = Service::start(ServiceConfig::default());

        let payload: Vec<u8> = (0..256).map(|i| (i % 6) as u8).collect();
        let hist = Histogram::of_payload(6, &payload).unwrap();
        for f in FamilyId::ALL {
            let (bits, data) = gw.encode_with(f, &hist, &payload).unwrap();
            match direct.submit(Request::Encode {
                family: f,
                histogram: hist.clone(),
                payload: payload.clone(),
            }) {
                Response::Encoded {
                    bit_len,
                    data: d_data,
                } => assert_eq!((bits, &data), (bit_len, &d_data), "{f}: gateway == direct"),
                other => panic!("direct {f} encode failed: {other:?}"),
            }
            assert_eq!(gw.decode_with(f, &hist, bits, &data).unwrap(), payload);
        }

        let snap = gw.snapshot();
        assert_eq!(snap.requests, 8);
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.family_requests, [2, 2, 2, 2]);
        let json = snap.to_json();
        for f in FamilyId::ALL {
            assert!(
                json.contains(&format!("\"family_{}_requests\":2", f.name())),
                "{f} missing from {json}"
            );
        }

        direct.shutdown();
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn delta_requests_follow_the_base_key_to_the_hot_replica() {
        let (servers, addrs) = fleet(4);
        let gw = Gateway::start(tiny_cfg(addrs));
        let direct = Service::start(ServiceConfig::default());

        // Seed a well-separated base through the gateway, then drift
        // it within the patch bound (distinct merge sums throughout,
        // so the Huffman patch rule applies).
        let payload: Vec<u8> = (0..256).map(|i| (i % 4) as u8).collect();
        let base = Histogram::new(vec![40, 20, 10, 5]).unwrap();
        gw.encode(&base, &payload).unwrap();
        let base_key = FamilyId::Huffman.tagged_key(base.hash64());
        let deltas = [(0u16, 8i32), (2, -3)];
        let drifted_counts = vec![48u32, 20, 7, 5];

        let (path, bits, data) = gw
            .encode_delta(FamilyId::Huffman, base_key, &deltas, &payload)
            .unwrap();
        assert_eq!(path, 0, "bounded drift patches");
        // Differential at the gateway boundary: identical bits to a
        // from-scratch encode of the drifted histogram.
        match direct.submit(Request::Encode {
            family: FamilyId::Huffman,
            histogram: Histogram::new(drifted_counts).unwrap(),
            payload: payload.clone(),
        }) {
            Response::Encoded { bit_len, data: d } => {
                assert_eq!((bits, &data), (bit_len, &d), "patched == direct");
            }
            other => panic!("direct encode failed: {other:?}"),
        }
        let back = gw
            .decode_delta(FamilyId::Huffman, base_key, &deltas, bits, &data)
            .unwrap();
        assert_eq!(back, payload);

        // Base seeding + both delta requests rode the same replica:
        // the base key pinned them to the base's home.
        let snap = gw.snapshot();
        let served: Vec<u64> = snap.replicas.iter().map(|r| r.successes).collect();
        assert_eq!(served.iter().sum::<u64>(), 3, "{served:?}");
        assert_eq!(
            served.iter().filter(|&&c| c > 0).count(),
            1,
            "deltas routed away from the base's replica: {served:?}"
        );

        direct.shutdown();
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn warm_up_merges_hot_sets_from_multiple_donors() {
        let (mut servers, addrs) = fleet(3);
        let mut cfg = tiny_cfg(addrs.clone());
        cfg.probe_interval = Duration::from_millis(20);
        cfg.breaker.failure_threshold = 1;
        cfg.breaker.open_cooldown = Duration::from_millis(50);
        cfg.warm_donors = 2;
        let gw = Gateway::start(cfg);

        // Two histograms homed on replica 0 whose failover targets
        // differ — after the kill, each survivor holds one of them, so
        // a full donation requires merging both donors' hot sets.
        let mut to_1 = None;
        let mut to_2 = None;
        for n in 2u32..200 {
            let payload: Vec<u8> = (0..128).map(|i| (i % n as usize) as u8).collect();
            let hist = Histogram::of_payload(n as usize, &payload).unwrap();
            let order = preference_order(hist.hash64(), 3);
            if order[0] == 0 && order[1] == 1 && to_1.is_none() {
                to_1 = Some((hist, payload));
            } else if order[0] == 0 && order[1] == 2 && to_2.is_none() {
                to_2 = Some((hist, payload));
            }
            if to_1.is_some() && to_2.is_some() {
                break;
            }
        }
        let (h1, p1) = to_1.expect("a key homed 0 → 1");
        let (h2, p2) = to_2.expect("a key homed 0 → 2");

        servers.remove(0).shutdown().unwrap();
        for _ in 0..3 {
            gw.encode(&h1, &p1).unwrap();
            gw.encode(&h2, &p2).unwrap();
        }

        let svc0 = Service::start(ServiceConfig::default());
        let revived = Server::bind_with(svc0.clone(), &addrs[0].to_string(), Transport::Blocking)
            .expect("rebind the killed replica's address");
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline && svc0.metrics().warmup_accepted < 2 {
            thread::sleep(Duration::from_millis(10));
        }
        assert!(
            svc0.metrics().warmup_accepted >= 2,
            "both donors' books should arrive in the merged push: {:?}",
            svc0.metrics()
        );
        gw.shutdown();
        revived.shutdown().unwrap();
        for s in servers {
            s.shutdown().unwrap();
        }
    }

    #[test]
    fn draining_gateway_sheds_and_answers_control_plane() {
        let (servers, addrs) = fleet(1);
        let gw = Gateway::start(tiny_cfg(addrs));
        match gw.request(&Request::Ping).unwrap() {
            Response::Pong { draining } => assert!(!draining),
            other => panic!("expected Pong, got {other:?}"),
        }
        assert_eq!(gw.request(&Request::Drain).unwrap(), Response::DrainOk);
        match gw.request(&Request::Ping).unwrap() {
            Response::Pong { draining } => assert!(draining),
            other => panic!("expected Pong, got {other:?}"),
        }
        let payload = vec![0u8, 1, 0, 1];
        let hist = Histogram::of_payload(2, &payload).unwrap();
        assert_eq!(
            gw.request(&Request::Encode {
                family: FamilyId::Huffman,
                histogram: hist,
                payload,
            })
            .unwrap(),
            Response::Busy,
            "draining gateway sheds codec work"
        );
        let snap = gw.snapshot();
        assert_eq!(snap.rejected_shutdown, 1);
        gw.shutdown();
        for s in servers {
            s.shutdown().unwrap();
        }
    }
}
