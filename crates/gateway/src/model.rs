//! Model-check scenarios for the circuit breaker.
//!
//! Only compiled under `--cfg partree_model`. The breaker's mutex and
//! counters route through [`crate::sync`]'s shadow types, so these
//! scenarios explore the *shipping* `breaker.rs` under every bounded
//! interleaving. Cooldowns are pinned to `Duration::ZERO` or
//! effectively-infinite so wall-clock reads in `Breaker::allow` never
//! become nondeterministic branches.

use crate::breaker::{Breaker, BreakerConfig, BreakerState};
use partree_verify::{thread, Config, Scenario};
use std::sync::Arc;
use std::time::Duration;

/// A threshold-1 breaker with no cooldown: the first failure opens it,
/// the next `allow` probes.
fn instant_cfg() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 1,
        open_cooldown: Duration::ZERO,
    }
}

/// Three callers racing for the probe slot after the cooldown: exactly
/// one may be admitted, in every interleaving.
fn breaker_single_probe_admission() {
    let b = Arc::new(Breaker::new(instant_cfg()));
    b.record_failure();
    let rivals: Vec<_> = (0..2)
        .map(|_| {
            let b2 = Arc::clone(&b);
            thread::spawn(move || b2.allow())
        })
        .collect();
    let mut admitted = b.allow() as u32;
    for rival in rivals {
        admitted += rival.join().expect("rival panicked") as u32;
    }
    assert_eq!(admitted, 1, "half-open admitted {admitted} probes");
    assert_eq!(b.state(), BreakerState::HalfOpen);
}

/// Concurrent failures crossing the threshold, with a concurrent
/// success racing the run: the breaker may not double-count a trip —
/// `opened_total` moves by at most one, and the final state is
/// consistent with whether the success landed before or after the trip.
fn breaker_concurrent_trip_opens_once() {
    let b = Arc::new(Breaker::new(BreakerConfig {
        failure_threshold: 2,
        // Effectively infinite: no allow() in this scenario may promote.
        open_cooldown: Duration::from_secs(3600),
    }));
    let (b1, b2) = (Arc::clone(&b), Arc::clone(&b));
    let t1 = thread::spawn(move || b1.record_failure());
    let t2 = thread::spawn(move || b2.record_failure());
    t1.join().expect("failer 1 panicked");
    t2.join().expect("failer 2 panicked");
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.opened_total(), 1, "threshold crossing double-counted");
    assert!(!b.allow(), "open breaker within cooldown must refuse");
    // A third failure while already open must not re-count.
    b.record_failure();
    assert_eq!(b.opened_total(), 1, "open breaker re-counted a failure");
}

/// A failed probe racing a late rival `allow`: whoever won the slot,
/// the failure re-opens the breaker, a fresh episode admits a fresh
/// probe, and `opened_total` counts both openings exactly.
fn breaker_probe_failure_reopens() {
    let b = Arc::new(Breaker::new(instant_cfg()));
    b.record_failure();
    let rivals: Vec<_> = (0..2)
        .map(|_| {
            let b2 = Arc::clone(&b);
            thread::spawn(move || b2.allow())
        })
        .collect();
    let mut admitted = b.allow() as u32;
    for rival in rivals {
        admitted += rival.join().expect("rival panicked") as u32;
    }
    assert_eq!(admitted, 1, "probe slot admitted {admitted}");
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.opened_total(), 2);
    assert!(b.allow(), "new episode must admit a new probe");
    b.record_success();
    assert_eq!(b.state(), BreakerState::Closed);
}

/// A successful probe racing concurrent traffic: after the winner's
/// `record_success`, the breaker is closed and everyone flows again.
fn breaker_probe_success_recloses() {
    let b = Arc::new(Breaker::new(instant_cfg()));
    b.record_failure();
    let b2 = Arc::clone(&b);
    let prober = thread::spawn(move || {
        if b2.allow() {
            b2.record_success();
            true
        } else {
            false
        }
    });
    let mine = b.allow();
    let probed = prober.join().expect("prober panicked");
    if mine {
        // This thread won the slot; resolve it so the scenario ends in
        // a quiescent state in every branch.
        b.record_success();
    } else {
        assert!(probed, "slot admitted no one");
    }
    assert_eq!(b.state(), BreakerState::Closed);
    assert!(b.allow() && b.allow(), "closed breaker must flow freely");
}

/// The breaker's scenario registry, run by `cargo run -p xtask --
/// verify` and the gateway model test suite.
pub fn scenarios() -> Vec<Scenario> {
    let cfg = Config {
        preemption_bound: 3,
        max_executions: 120_000,
        max_steps: 5_000,
        read_window: 4,
    };
    vec![
        Scenario {
            name: "breaker_single_probe_admission",
            cfg,
            body: breaker_single_probe_admission,
        },
        Scenario {
            name: "breaker_concurrent_trip_opens_once",
            cfg,
            body: breaker_concurrent_trip_opens_once,
        },
        Scenario {
            name: "breaker_probe_failure_reopens",
            cfg,
            body: breaker_probe_failure_reopens,
        },
        Scenario {
            name: "breaker_probe_success_recloses",
            cfg,
            body: breaker_probe_success_recloses,
        },
    ]
}
