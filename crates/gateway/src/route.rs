//! Rendezvous (highest-random-weight) hashing.
//!
//! Every request key — the FNV-1a hash of its weight histogram — gets a
//! deterministic score against each replica; a key's *preference order*
//! is the replicas sorted by descending score. The properties that make
//! this the right shard function for a codebook-cache fleet:
//!
//! * **Cache affinity.** A histogram always lands on the same replica
//!   (its rank-0 choice), so each replica's `CodebookCache` stays hot
//!   for its slice of the alphabet space instead of every replica
//!   caching everything.
//! * **Minimal disruption.** When a replica dies, only the keys that
//!   ranked it first move — and they move to their rank-1 choice, which
//!   is exactly the replica hedges and retries were already warming.
//!   Keys mapped to surviving replicas do not move at all (no global
//!   reshuffle, unlike modular hashing).
//! * **No coordination.** The order is a pure function of
//!   `(key, replica count)`; every gateway instance computes the same
//!   one without shared state.

/// Deterministic per-`(key, replica)` score: a splitmix64 finalizer
/// over the pair. The finalizer's avalanche property is what spreads
/// consecutive replica indices into independent scores.
fn score(key: u64, replica: u64) -> u64 {
    let mut z = key ^ replica.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The full preference order for `key` over `n` replicas: index 0 is
/// the home shard, index 1 the first failover/hedge target, and so on.
/// Deterministic; ties (never observed under splitmix64, but possible
/// in principle) break toward the lower replica index.
pub fn preference_order(key: u64, n: usize) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = (0..n).map(|r| (score(key, r as u64), r)).collect();
    // Descending score; `Reverse` on the index keeps ties stable-low.
    scored.sort_unstable_by_key(|&(s, r)| (std::cmp::Reverse(s), r));
    scored.into_iter().map(|(_, r)| r).collect()
}

/// The home shard alone (rank 0), when the caller does not need the
/// whole order.
pub fn home(key: u64, n: usize) -> usize {
    (0..n)
        .max_by_key(|&r| (score(key, r as u64), std::cmp::Reverse(r)))
        // lint: allow(no-unwrap): constructor rejects empty replica sets, so the ranked list is provably nonempty here
        .expect("at least one replica")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_deterministic_and_a_permutation() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            let a = preference_order(key, 7);
            let b = preference_order(key, 7);
            assert_eq!(a, b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>());
            assert_eq!(a[0], home(key, 7));
        }
    }

    #[test]
    fn keys_spread_roughly_uniformly() {
        const KEYS: usize = 10_000;
        const N: usize = 4;
        let mut counts = [0usize; N];
        for k in 0..KEYS {
            counts[home(k as u64, N)] += 1;
        }
        for &c in &counts {
            // Expected 2500 per shard; 3σ of a binomial(10⁴, ¼) is ~130.
            assert!((2100..=2900).contains(&c), "shard imbalance: {counts:?}");
        }
    }

    #[test]
    fn removing_a_replica_only_moves_its_own_keys() {
        const KEYS: usize = 2_000;
        const N: usize = 5;
        for k in 0..KEYS {
            let key = (k as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
            let full = preference_order(key, N);
            // Simulate replica `full[0]` dying: the surviving order is
            // the full order with it filtered out — i.e. keys homed on
            // a survivor keep their home, and keys homed on the dead
            // replica move to their rank-1 choice.
            let dead = full[0];
            let survivors: Vec<usize> = full.iter().copied().filter(|&r| r != dead).collect();
            assert_eq!(survivors[0], full[1]);
            for (i, &r) in full.iter().enumerate().skip(1) {
                assert_eq!(survivors[i - 1], r);
            }
        }
    }
}
