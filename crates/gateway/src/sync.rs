//! Primitive shim for the model-checked breaker.
//!
//! [`crate::breaker`] imports its mutex and atomics from here: a pure
//! `std::sync` re-export in shipping builds, partree-verify's shadow
//! types under `--cfg partree_model` — so the model checker explores
//! the exact breaker source that ships (see `crates/exec/src/sync.rs`
//! for the same pattern over the executor core).

#[cfg(not(partree_model))]
pub(crate) use std::sync::atomic::AtomicU64;
#[cfg(not(partree_model))]
pub(crate) use std::sync::Mutex;

#[cfg(partree_model)]
pub(crate) use partree_verify::sync::{AtomicU64, Mutex};

pub(crate) use std::sync::atomic::Ordering;
