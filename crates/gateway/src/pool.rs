//! Per-replica connection pool for the blocking [`Client`].
//!
//! One `partree-service` connection carries one outstanding request, so
//! router concurrency is connection concurrency; the pool amortizes the
//! TCP + handshake cost across requests. The safety rule inherited from
//! the client is load-bearing here: a connection that produced **any**
//! error is poisoned (it may be mid-frame) and must be discarded, never
//! checked back in — callers return connections only after a clean
//! response.

use partree_service::client::Client;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A bounded stack of idle connections to one replica.
#[derive(Debug)]
pub struct ConnPool {
    addr: SocketAddr,
    idle: Mutex<Vec<Client>>,
    cap: usize,
    connect_timeout: Duration,
    created: AtomicU64,
    reused: AtomicU64,
}

impl ConnPool {
    /// An empty pool for `addr` holding at most `cap` idle connections.
    pub fn new(addr: SocketAddr, cap: usize, connect_timeout: Duration) -> ConnPool {
        ConnPool {
            addr,
            idle: Mutex::new(Vec::new()),
            cap,
            connect_timeout,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// The replica this pool dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Pops an idle connection (rebinding its io timeout) or dials a
    /// new one. LIFO reuse keeps the hottest connection hottest and
    /// lets the idle tail age out of kernel buffers.
    pub fn checkout(&self, io_timeout: Option<Duration>) -> io::Result<Client> {
        // lint: allow(no-unwrap): a poisoned pool lock means a panic mid-checkout; the idle list may alias live connections, so crashing is the only sound escalation
        let idle = self.idle.lock().expect("pool poisoned").pop();
        if let Some(client) = idle {
            // A dead socket rejects setsockopt; on error fall through
            // and dial fresh rather than failing the checkout.
            if client.set_io_timeout(io_timeout).is_ok() {
                self.reused.fetch_add(1, Ordering::Relaxed);
                return Ok(client);
            }
        }
        let client = Client::connect_with(self.addr, self.connect_timeout, io_timeout)?;
        self.created.fetch_add(1, Ordering::Relaxed);
        Ok(client)
    }

    /// Returns a connection after a clean response. Over-cap
    /// connections are dropped (closing the socket).
    pub fn checkin(&self, client: Client) {
        // lint: allow(no-unwrap): poisoned pool lock, as above
        let mut g = self.idle.lock().expect("pool poisoned");
        if g.len() < self.cap {
            g.push(client);
        }
    }

    /// Drops every idle connection (poisoned-replica reset / shutdown).
    pub fn clear(&self) {
        // lint: allow(no-unwrap): poisoned pool lock, as above
        self.idle.lock().expect("pool poisoned").clear();
    }

    /// Idle connections right now.
    pub fn idle_len(&self) -> usize {
        // lint: allow(no-unwrap): poisoned pool lock, as above
        self.idle.lock().expect("pool poisoned").len()
    }

    /// `(connections dialed, checkouts served from idle)`.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.created.load(Ordering::Relaxed),
            self.reused.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partree_service::net::Server;
    use partree_service::server::{Service, ServiceConfig};

    #[test]
    fn checkout_reuses_checked_in_connections() {
        let server = Server::bind(Service::start(ServiceConfig::default()), "127.0.0.1:0").unwrap();
        let pool = ConnPool::new(server.addr(), 4, Duration::from_millis(500));
        let mut c = pool.checkout(Some(Duration::from_secs(1))).unwrap();
        assert!(!c.ping().unwrap());
        pool.checkin(c);
        assert_eq!(pool.idle_len(), 1);
        let mut c = pool.checkout(Some(Duration::from_secs(1))).unwrap();
        assert!(!c.ping().unwrap());
        pool.checkin(c);
        let (created, reused) = pool.counters();
        assert_eq!((created, reused), (1, 1), "second checkout reused");
        pool.clear();
        assert_eq!(pool.idle_len(), 0);
        server.shutdown().unwrap();
    }

    #[test]
    fn cap_bounds_idle_connections() {
        let server = Server::bind(Service::start(ServiceConfig::default()), "127.0.0.1:0").unwrap();
        let pool = ConnPool::new(server.addr(), 2, Duration::from_millis(500));
        let conns: Vec<Client> = (0..4)
            .map(|_| pool.checkout(Some(Duration::from_secs(1))).unwrap())
            .collect();
        for c in conns {
            pool.checkin(c);
        }
        assert_eq!(pool.idle_len(), 2, "over-cap connections dropped");
        pool.clear();
        server.shutdown().unwrap();
    }

    #[test]
    fn dead_replica_fails_checkout_within_the_connect_timeout() {
        let server = Server::bind(Service::start(ServiceConfig::default()), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        server.shutdown().unwrap();
        let pool = ConnPool::new(addr, 2, Duration::from_millis(300));
        let t0 = std::time::Instant::now();
        assert!(pool.checkout(Some(Duration::from_secs(1))).is_err());
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "connect did not hang"
        );
    }
}
