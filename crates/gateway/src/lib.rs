//! # partree-gateway
//!
//! A sharded replica router for [`partree-service`](partree_service):
//! one [`Gateway`] fronts N codec replicas on loopback TCP and gives
//! callers a single-endpoint view with strictly better availability
//! than any one replica.
//!
//! The moving parts, each in its own module:
//!
//! * [`route`] — rendezvous hashing over the histogram key. A given
//!   weight table always lands on the same *home* replica, so each
//!   replica's codebook cache stays hot for its slice of key space,
//!   and losing a replica moves only that replica's keys.
//! * [`pool`] — per-replica connection pools for the blocking client,
//!   with the discard-on-error rule (an errored connection may be
//!   mid-frame and is never reused).
//! * [`breaker`] — a closed/open/half-open circuit breaker per replica,
//!   fed by data traffic *and* by a background `Ping` prober. Only
//!   liveness failures trip it; `Busy`/`Timeout` backpressure does not.
//! * [`gateway`] — the event loop: per-request deadline budget, bounded
//!   retries with jittered exponential backoff, and one hedged attempt
//!   after an adaptive latency threshold, first response wins.
//!   Attempts run on per-attempt threads (blocking transport) or are
//!   multiplexed on one shared epoll reactor
//!   ([`partree_service::net::Transport`] selects, default from
//!   `PARTREE_TRANSPORT`).
//! * [`metrics`] — per-replica latency histograms and router counters,
//!   exported as the same style of hand-written JSON as the service.
//!
//! The gateway never transforms payloads: every response is
//! byte-identical to what a direct connection to the serving replica
//! would have returned, so the service's determinism contract extends
//! through the router unchanged.
//!
//! ```no_run
//! use partree_gateway::{Gateway, GatewayConfig};
//! use partree_service::frame::Histogram;
//!
//! let addrs = vec!["127.0.0.1:7401".parse().unwrap(),
//!                  "127.0.0.1:7402".parse().unwrap(),
//!                  "127.0.0.1:7403".parse().unwrap()];
//! let gw = Gateway::start(GatewayConfig::new(addrs));
//! let payload = b"abracadabra".to_vec();
//! let hist = Histogram::of_payload(256, &payload).unwrap();
//! let (bits, data) = gw.encode(&hist, &payload).unwrap();
//! assert_eq!(gw.decode(&hist, bits, &data).unwrap(), payload);
//! gw.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod breaker;
pub mod gateway;
pub mod metrics;
#[cfg(partree_model)]
pub mod model;
pub mod pool;
mod reactor;
pub mod route;
mod sync;

pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use gateway::{Gateway, GatewayConfig};
pub use metrics::{GatewaySnapshot, ReplicaSnapshot};
pub use pool::ConnPool;
