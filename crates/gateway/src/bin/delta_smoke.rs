//! CI smoke test for the delta subsystem end to end: a fleet of
//! store-backed replicas serving a **drifting** workload — every base
//! codebook named by key, every drift shipped as sparse count deltas —
//! then one replica killed and restarted onto the same store. Asserts:
//!
//! * every `EncodeDelta` answer is byte-identical to a from-scratch
//!   encode of the drifted histogram on a direct service (the
//!   subsystem's differential invariant, measured at the wire);
//! * the workload's well-separated histograms take the **patch** path
//!   every time — zero `delta_fallbacks` fleet-wide, i.e. no spurious
//!   full reconstructions;
//! * patched codebooks survive the kill/restart cycle bit-identically
//!   and the restarted replica re-serves the whole drifting workload
//!   with **zero** constructions (bases and patched results both come
//!   off its tier-1 log);
//! * no thread or file-descriptor leaks across the cycle.
//!
//! Exits non-zero with a message on stderr on any failure; the CI step
//! wraps this in a timeout so a hung recovery also fails.

use partree_gateway::{Gateway, GatewayConfig};
use partree_service::frame::{Histogram, Request, Response};
use partree_service::net::Server;
use partree_service::server::{Service, ServiceConfig};
use partree_service::FamilyId;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const REPLICAS: usize = 2;
const VICTIM: usize = 0;

/// Base shape with pairwise-distinct counts *and* pairwise-distinct
/// Huffman merge sums — the regime the patch rule proves uniqueness
/// in — stable under uniform scaling.
const BASE_SHAPE: [u32; 8] = [610, 310, 160, 80, 40, 21, 11, 5];

/// Per-base drifts (also scaled): each stays within the factor-of-two
/// default bound and preserves the separation above.
const DRIFTS: [&[(u16, i32)]; 3] = [&[(0, 60), (3, -9)], &[(1, -40), (5, 4)], &[(2, 30)]];

/// Patch-capable families only: the no-fallback assertion is the
/// point of this smoke.
const FAMILIES: [FamilyId; 2] = [FamilyId::Huffman, FamilyId::ShannonFano];

const BASES: usize = 6;

/// One drifting workload item, pre-answered on a direct service.
struct Expected {
    family: FamilyId,
    base: Histogram,
    base_key: u64,
    deltas: Vec<(u16, i32)>,
    payload: Vec<u8>,
    bit_len: u64,
    data: Vec<u8>,
}

fn scaled_base(i: usize) -> Vec<u32> {
    let m = i as u32 + 1;
    BASE_SHAPE.iter().map(|&c| c * m).collect()
}

fn scaled_deltas(i: usize, d: &[(u16, i32)]) -> Vec<(u16, i32)> {
    let m = i as i32 + 1;
    d.iter().map(|&(s, v)| (s, v * m)).collect()
}

fn apply_deltas(counts: &[u32], deltas: &[(u16, i32)]) -> Vec<u32> {
    let mut next = counts.to_vec();
    for &(s, d) in deltas {
        next[s as usize] = (i64::from(next[s as usize]) + i64::from(d)) as u32;
    }
    next
}

fn payload(seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..96)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % BASE_SHAPE.len() as u64) as u8
        })
        .collect()
}

/// Answers every drifted item from scratch on a direct service: the
/// ground truth all gateway answers must match byte-for-byte.
fn build_expected() -> Result<Vec<Expected>, String> {
    let direct = Service::start(ServiceConfig::default());
    let mut out = Vec::new();
    for i in 0..BASES {
        let base = Histogram::new(scaled_base(i)).map_err(|e| format!("base {i}: {e:?}"))?;
        for (j, d) in DRIFTS.iter().enumerate() {
            let family = FAMILIES[(i + j) % FAMILIES.len()];
            let deltas = scaled_deltas(i, d);
            let drifted = Histogram::new(apply_deltas(base.counts(), &deltas))
                .map_err(|e| format!("drift {i}/{j}: {e:?}"))?;
            let msg = payload((i * DRIFTS.len() + j) as u64);
            match direct.submit(Request::Encode {
                family,
                histogram: drifted,
                payload: msg.clone(),
            }) {
                Response::Encoded { bit_len, data } => out.push(Expected {
                    family,
                    base_key: family.tagged_key(base.hash64()),
                    base: base.clone(),
                    deltas,
                    payload: msg,
                    bit_len,
                    data,
                }),
                other => return Err(format!("direct encode {i}/{j} failed: {other:?}")),
            }
        }
    }
    direct.shutdown();
    Ok(out)
}

fn replica_cfg(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        store_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    }
}

/// Seeds every base through the gateway (full encodes route on the
/// same family-tagged key the deltas will).
fn seed_bases(gw: &Gateway, expected: &[Expected], phase: &str) -> Result<(), String> {
    for (i, e) in expected.iter().enumerate() {
        gw.encode_with(e.family, &e.base, &e.payload)
            .map_err(|err| format!("{phase} seed {i}: {err}"))?;
    }
    Ok(())
}

/// Drives every drifted item as an `EncodeDelta`/`DecodeDelta` pair,
/// asserting bit-identity with the direct run and that every answer
/// took the patch path.
fn drive_deltas(gw: &Gateway, expected: &[Expected], phase: &str) -> Result<(), String> {
    for (i, e) in expected.iter().enumerate() {
        let (path, bits, data) = gw
            .encode_delta(e.family, e.base_key, &e.deltas, &e.payload)
            .map_err(|err| format!("{phase} delta {i}: {err}"))?;
        if path != 0 {
            return Err(format!(
                "{phase} delta {i} ({}): took the rebuild path on a patchable drift",
                e.family
            ));
        }
        if (bits, &data) != (e.bit_len, &e.data) {
            return Err(format!(
                "{phase} delta {i} ({}): patched bytes differ from the from-scratch run",
                e.family
            ));
        }
        let back = gw
            .decode_delta(e.family, e.base_key, &e.deltas, bits, &data)
            .map_err(|err| format!("{phase} decode {i}: {err}"))?;
        if back != e.payload {
            return Err(format!("{phase} decode {i}: payload did not roundtrip"));
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let _ = partree_exec::global();
    let threads_before = active_threads()?;
    let fds_before = open_fds()?;
    let t0 = Instant::now();
    let mark = |phase: &str| eprintln!("delta-smoke [{:>7.2?}] {phase}", t0.elapsed());

    let store_root =
        std::env::temp_dir().join(format!("partree-delta-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let dirs: Vec<PathBuf> = (0..REPLICAS)
        .map(|i| store_root.join(format!("replica-{i}")))
        .collect();

    let expected = build_expected()?;
    mark("drifting workload pre-answered on a direct service");

    let mut servers: Vec<Option<Server>> = dirs
        .iter()
        .map(|dir| {
            Server::bind(Service::start(replica_cfg(dir)), "127.0.0.1:0")
                .map(Some)
                .map_err(|e| format!("bind: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<_> = servers.iter().map(|s| s.as_ref().unwrap().addr()).collect();
    let services: Vec<Service> = servers
        .iter()
        .map(|s| s.as_ref().unwrap().service().clone())
        .collect();

    let mut cfg = GatewayConfig::new(addrs.clone());
    cfg.deadline = Duration::from_secs(2);
    cfg.probe_interval = Duration::from_millis(25);
    cfg.breaker.failure_threshold = 1;
    cfg.breaker.open_cooldown = Duration::from_millis(200);
    // No hedging: a hedged delta could land on a replica that never saw
    // the base and fail as UnknownBase instead of being retried in
    // place.
    cfg.hedge_after_min = Duration::from_secs(5);
    let gw = Gateway::start(cfg);

    // Phase 1 — seed the bases, then drive the drifting workload. Every
    // delta routes on its base key to the replica holding the base hot,
    // patches there, and writes the drifted codebook through to that
    // replica's log.
    seed_bases(&gw, &expected, "populate")?;
    drive_deltas(&gw, &expected, "populate")?;
    let fallbacks: u64 = services.iter().map(|s| s.metrics().delta_fallbacks).sum();
    if fallbacks != 0 {
        return Err(format!(
            "{fallbacks} delta(s) fell back to full reconstruction on a patchable workload"
        ));
    }
    mark("phase 1 (populate) done — all drifts patched, zero fallbacks");

    // Phase 2 — kill the victim. Its store keeps the bases *and* the
    // patched results it served.
    let killed = servers[VICTIM].take().ok_or("victim already taken")?;
    let dead_svc = killed.service().clone();
    killed
        .shutdown()
        .map_err(|e| format!("kill replica {VICTIM}: {e}"))?;
    dead_svc.shutdown();
    drop(dead_svc);
    mark("phase 2 (kill) done — victim down, log on disk");

    // Phase 3 — restart onto the same store directory and address, wait
    // for the prober to warm and re-admit it.
    let svc = Service::start(replica_cfg(&dirs[VICTIM]));
    let revived = Server::bind(svc.clone(), &addrs[VICTIM].to_string())
        .map_err(|e| format!("rebind replica {VICTIM}: {e}"))?;
    let warm_deadline = Instant::now() + Duration::from_secs(15);
    while gw.snapshot().warmups == 0 {
        if Instant::now() >= warm_deadline {
            return Err(format!(
                "restarted replica was never warmed: {:?}",
                gw.snapshot()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    mark("phase 3 (restart) — victim revived on its old store and warmed");

    // Phase 4 — re-drive the whole drifting workload, twice. Bases and
    // patched codebooks on the revived replica both resolve from its
    // tier-1 log (or the donated hot set); answers stay bit-identical
    // and nothing is reconstructed from scratch.
    drive_deltas(&gw, &expected, "recovery pass 1")?;
    drive_deltas(&gw, &expected, "recovery pass 2")?;
    mark("recovery passes done — patched results survived bit-identically");

    let m = svc.metrics();
    if m.delta_requests == 0 {
        return Err(format!(
            "restarted replica saw no delta traffic after warm-up: {m:?}"
        ));
    }
    if m.constructions != 0 {
        return Err(format!(
            "restarted replica reconstructed {} codebook(s) its store should have served: {m:?}",
            m.constructions
        ));
    }
    let fallbacks: u64 = services
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != VICTIM)
        .map(|(_, s)| s.metrics().delta_fallbacks)
        .sum::<u64>()
        + m.delta_fallbacks;
    if fallbacks != 0 {
        return Err(format!("{fallbacks} post-restart fallback(s)"));
    }
    if m.store_errors != 0 {
        return Err(format!("store errors after clean restart: {m:?}"));
    }

    gw.shutdown();
    revived
        .shutdown()
        .map_err(|e| format!("shutdown revived: {e}"))?;
    svc.shutdown();
    drop(svc);
    for s in servers.into_iter().flatten() {
        let svc = s.service().clone();
        s.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        svc.shutdown();
    }
    drop(services);
    mark("gateway and replicas shut down");

    for _ in 0..50 {
        if active_threads()? <= threads_before && open_fds()? <= fds_before + 2 {
            let _ = std::fs::remove_dir_all(&store_root);
            println!(
                "delta-smoke OK: {} drifted items served patched ({} delta requests on the \
                 revived replica, {} patched, 0 fallbacks, 0 reconstructions after restart)",
                expected.len(),
                m.delta_requests,
                m.delta_patched,
            );
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!(
        "leak: threads {} -> {}, fds {} -> {} after shutdown",
        threads_before,
        active_threads()?,
        fds_before,
        open_fds()?
    ))
}

/// Counts this process's live threads via procfs (Linux CI).
fn active_threads() -> Result<usize, String> {
    match std::fs::read_dir("/proc/self/task") {
        Ok(entries) => Ok(entries.count()),
        Err(_) => Ok(usize::MAX),
    }
}

/// Counts this process's open file descriptors via procfs (Linux CI).
fn open_fds() -> Result<usize, String> {
    match std::fs::read_dir("/proc/self/fd") {
        Ok(entries) => Ok(entries.count()),
        Err(_) => Ok(0),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("delta-smoke FAILED: {e}");
        std::process::exit(1);
    }
}
