//! CI smoke test for the tiered persistent store plus fleet warm-up:
//! a fleet of store-backed replicas under load, one killed and then
//! restarted onto the **same** store directory. Asserts the restarted
//! replica is warmed by a donor before rejoining (`warmup_keys_sent`
//! moved), answers its traffic with **zero reconstructions** — tier 0
//! from the donation, tier 1 from its own surviving log — with a warm
//! tier-1 hit rate above zero, that every response stays byte-identical
//! to a direct single-service run, and that no threads or file
//! descriptors leak across the kill/restart cycle.
//!
//! Exits non-zero with a message on stderr on any failure; the CI step
//! wraps this in a timeout so a hung recovery also fails.

use partree_gateway::{Gateway, GatewayConfig};
use partree_service::frame::{Histogram, Request, Response};
use partree_service::net::Server;
use partree_service::server::{Service, ServiceConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REPLICAS: usize = 3;
/// The replica that gets killed and restarted onto its old store.
const VICTIM: usize = 0;

/// One pre-verified workload item: the request and the bytes a direct
/// service produced for it.
struct Expected {
    hist: Histogram,
    payload: Vec<u8>,
    bit_len: u64,
    data: Vec<u8>,
}

/// Deterministic pseudo-random payload over `n` symbols.
fn payload(n: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % n as u64) as u8
        })
        .collect()
}

/// Builds the workload and answers every item on a direct (no-network,
/// no-store) service, so every later response can be compared
/// byte-for-byte.
fn build_expected() -> Result<Vec<Expected>, String> {
    let direct = Service::start(ServiceConfig::default());
    let mut out = Vec::new();
    for i in 0..24u64 {
        let n = [2usize, 5, 16, 64, 256][i as usize % 5];
        let mut msg: Vec<u8> = (0..n as u16).map(|s| s as u8).collect();
        msg.extend(payload(n, i, 64 + (i as usize % 128)));
        let hist =
            Histogram::of_payload(n, &msg).map_err(|e| format!("workload {i}: {}", e.message))?;
        match direct.submit(Request::Encode {
            histogram: hist.clone(),
            payload: msg.clone(),
        }) {
            Response::Encoded { bit_len, data } => out.push(Expected {
                hist,
                payload: msg,
                bit_len,
                data,
            }),
            other => return Err(format!("direct encode {i} failed: {other:?}")),
        }
    }
    direct.shutdown();
    Ok(out)
}

/// Store-backed replica config. The restarted victim also gets a tiny
/// tier 0 (one shard, four entries) so its post-recovery traffic cannot
/// be absorbed by memory alone — the warm tier-1 hit rate we assert on
/// has to come from the log.
fn replica_cfg(dir: &Path, tiny_tier0: bool) -> ServiceConfig {
    let mut cfg = ServiceConfig {
        store_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    };
    if tiny_tier0 {
        cfg.cache_shards = 1;
        cfg.cache_capacity = 4;
    }
    cfg
}

fn drive(gw: &Gateway, expected: &[Expected], phase: &str) -> Result<(), String> {
    for (i, e) in expected.iter().enumerate() {
        let (bits, data) = gw
            .encode(&e.hist, &e.payload)
            .map_err(|err| format!("{phase} {i}: {err}"))?;
        if (bits, &data) != (e.bit_len, &e.data) {
            return Err(format!("{phase} {i}: gateway bytes differ from direct run"));
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let _ = partree_exec::global();
    let threads_before = active_threads()?;
    let fds_before = open_fds()?;
    let t0 = Instant::now();
    let mark = |phase: &str| eprintln!("store-smoke [{:>7.2?}] {phase}", t0.elapsed());

    let store_root =
        std::env::temp_dir().join(format!("partree-store-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let dirs: Vec<PathBuf> = (0..REPLICAS)
        .map(|i| store_root.join(format!("replica-{i}")))
        .collect();

    let expected = Arc::new(build_expected()?);
    mark("workload pre-answered on a direct service");

    let mut servers: Vec<Option<Server>> = dirs
        .iter()
        .map(|dir| {
            Server::bind(Service::start(replica_cfg(dir, false)), "127.0.0.1:0")
                .map(Some)
                .map_err(|e| format!("bind: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<_> = servers.iter().map(|s| s.as_ref().unwrap().addr()).collect();

    let mut cfg = GatewayConfig::new(addrs.clone());
    cfg.deadline = Duration::from_secs(2);
    cfg.probe_interval = Duration::from_millis(25);
    cfg.breaker.failure_threshold = 1;
    cfg.breaker.open_cooldown = Duration::from_millis(200);
    // No hedging: a hedge could route a foreign key onto the restarted
    // replica and blur the zero-reconstruction assertion.
    cfg.hedge_after_min = Duration::from_secs(5);
    let gw = Gateway::start(cfg);

    // Phase 1 — populate: every codebook is built on its home replica
    // and written through to that replica's tier-1 log.
    drive(&gw, &expected, "populate")?;
    mark("phase 1 (populate) done — every replica's tier-1 log written");

    // Phase 2 — kill the victim and keep serving: its keys fail over to
    // the survivors, whose hit counters make those keys donor-visible
    // for the warm-up that follows.
    let killed = servers[VICTIM].take().ok_or("victim already taken")?;
    let dead_svc = killed.service().clone();
    killed
        .shutdown()
        .map_err(|e| format!("kill replica {VICTIM}: {e}"))?;
    dead_svc.shutdown();
    // Release our handle so the dead replica's store (and its open
    // segment file) actually closes — the restart below must reopen
    // the log from disk, not share a live file.
    drop(dead_svc);
    drive(&gw, &expected, "failover")?;
    mark("phase 2 (failover) done — victim killed, survivors absorbed its keys");

    // Phase 3 — restart onto the same store directory, same address.
    // The prober must warm the replica from a donor's hot set before
    // re-closing its breaker and routing to it again.
    let svc = Service::start(replica_cfg(&dirs[VICTIM], true));
    let revived = Server::bind(svc.clone(), &addrs[VICTIM].to_string())
        .map_err(|e| format!("rebind replica {VICTIM}: {e}"))?;
    let warm_deadline = Instant::now() + Duration::from_secs(15);
    while gw.snapshot().warmups == 0 {
        if Instant::now() >= warm_deadline {
            return Err(format!(
                "restarted replica was never warmed: {:?}",
                gw.snapshot()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    mark("phase 3 (restart) — replica revived on its old store and warmed");

    // Drive the workload twice more. The victim's homed keys must be
    // answered without a single reconstruction: the donated hot set
    // covers tier 0, and everything else comes off its tier-1 log.
    drive(&gw, &expected, "warm pass 1")?;
    drive(&gw, &expected, "warm pass 2")?;
    mark("warm passes done — all responses bit-identical");

    let snap = gw.snapshot();
    if snap.warmups == 0 || snap.warmup_keys_sent == 0 {
        return Err(format!("warm-up never donated keys: {snap:?}"));
    }
    let m = svc.metrics();
    if m.encoded == 0 {
        return Err(format!(
            "restarted replica saw no traffic after warm-up: {m:?}"
        ));
    }
    if m.constructions != 0 {
        return Err(format!(
            "restarted replica rebuilt {} codebook(s) that its store should have served: {m:?}",
            m.constructions
        ));
    }
    if m.tier1_hits == 0 {
        return Err(format!(
            "warm tier-1 hit rate is zero — recovery never read the log: {m:?}"
        ));
    }
    if m.store_errors != 0 {
        return Err(format!("store errors after clean restart: {m:?}"));
    }

    gw.shutdown();
    revived
        .shutdown()
        .map_err(|e| format!("shutdown revived: {e}"))?;
    svc.shutdown();
    drop(svc);
    for s in servers.into_iter().flatten() {
        let svc = s.service().clone();
        s.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        svc.shutdown();
    }
    mark("gateway and replicas shut down");

    // Leak checks: threads and fds must return to (at most) their
    // pre-fleet counts. Polled because socket teardown is asynchronous.
    for _ in 0..50 {
        if active_threads()? <= threads_before && open_fds()? <= fds_before + 2 {
            let _ = std::fs::remove_dir_all(&store_root);
            println!(
                "store-smoke OK: restart served {} requests with 0 reconstructions \
                 ({} tier-1 hits, {} tier-0 hits), warm-up donated {} key(s) in {} round(s)",
                m.encoded, m.tier1_hits, m.tier0_hits, snap.warmup_keys_sent, snap.warmups
            );
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!(
        "leak: threads {} -> {}, fds {} -> {} after shutdown",
        threads_before,
        active_threads()?,
        fds_before,
        open_fds()?
    ))
}

/// Counts this process's live threads via procfs (Linux CI).
fn active_threads() -> Result<usize, String> {
    match std::fs::read_dir("/proc/self/task") {
        Ok(entries) => Ok(entries.count()),
        // Not on Linux: fall back to "no leak detected".
        Err(_) => Ok(usize::MAX),
    }
}

/// Counts this process's open file descriptors via procfs (Linux CI).
fn open_fds() -> Result<usize, String> {
    match std::fs::read_dir("/proc/self/fd") {
        Ok(entries) => Ok(entries.count()),
        // Not on Linux: fall back to "no leak detected" (0 passes any
        // `<= before + slack` comparison against a usize::MAX baseline).
        Err(_) => Ok(0),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("store-smoke FAILED: {e}");
        std::process::exit(1);
    }
}
