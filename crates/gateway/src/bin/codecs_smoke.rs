//! CI smoke test for the multi-family codec subsystem: a store-backed
//! fleet serving all four code families (Huffman, Shannon–Fano,
//! minimax, choosable-edge) through the gateway, then one replica
//! restarted onto its mixed-family store directory. Asserts every
//! response is byte-identical to a direct single-service run, the
//! gateway's per-family request counters move for all four families,
//! the restarted replica answers its mixed-family traffic without
//! reconstruction, and no threads or file descriptors leak across the
//! kill/restart cycle.
//!
//! Exits non-zero with a message on stderr on any failure; the CI step
//! wraps this in a timeout so a hung recovery also fails.

use partree_gateway::{Gateway, GatewayConfig};
use partree_service::frame::{Histogram, Request, Response};
use partree_service::net::Server;
use partree_service::server::{Service, ServiceConfig};
use partree_service::FamilyId;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REPLICAS: usize = 3;
/// The replica that gets killed and restarted onto its old store.
const VICTIM: usize = 0;

/// One pre-verified workload item: the family-tagged request and the
/// bytes a direct service produced for it.
struct Expected {
    family: FamilyId,
    hist: Histogram,
    payload: Vec<u8>,
    bit_len: u64,
    data: Vec<u8>,
}

/// Deterministic pseudo-random payload over `n` symbols, led by one of
/// each symbol so every histogram count is nonzero.
fn payload(n: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut out: Vec<u8> = (0..n as u16).map(|s| s as u8).collect();
    out.extend((0..len).map(|_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as u8
    }));
    out
}

/// Builds a workload that cycles all four families over varied
/// alphabets (choosable capped at its 32-symbol ceiling) and answers
/// every item on a direct service for byte-for-byte comparison.
fn build_expected() -> Result<Vec<Expected>, String> {
    let direct = Service::start(ServiceConfig::default());
    let mut out = Vec::new();
    for i in 0..24u64 {
        let family = FamilyId::ALL[i as usize % 4];
        let n = match family {
            FamilyId::ChoosableEdge => [2usize, 5, 16, 32][i as usize % 4],
            _ => [2usize, 5, 16, 64, 256][i as usize % 5],
        };
        let msg = payload(n, i, 64 + (i as usize % 128));
        let hist =
            Histogram::of_payload(n, &msg).map_err(|e| format!("workload {i}: {}", e.message))?;
        match direct.submit(Request::Encode {
            family,
            histogram: hist.clone(),
            payload: msg.clone(),
        }) {
            Response::Encoded { bit_len, data } => out.push(Expected {
                family,
                hist,
                payload: msg,
                bit_len,
                data,
            }),
            other => return Err(format!("direct {family} encode {i} failed: {other:?}")),
        }
    }
    direct.shutdown();
    Ok(out)
}

/// Store-backed replica config; the restarted victim gets a tiny tier 0
/// so its post-recovery traffic must come off the mixed-family log.
fn replica_cfg(dir: &Path, tiny_tier0: bool) -> ServiceConfig {
    let mut cfg = ServiceConfig {
        store_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    };
    if tiny_tier0 {
        cfg.cache_shards = 1;
        cfg.cache_capacity = 4;
    }
    cfg
}

fn drive(gw: &Gateway, expected: &[Expected], phase: &str) -> Result<(), String> {
    for (i, e) in expected.iter().enumerate() {
        let (bits, data) = gw
            .encode_with(e.family, &e.hist, &e.payload)
            .map_err(|err| format!("{phase} {i} ({}): {err}", e.family))?;
        if (bits, &data) != (e.bit_len, &e.data) {
            return Err(format!(
                "{phase} {i} ({}): gateway bytes differ from direct run",
                e.family
            ));
        }
        let back = gw
            .decode_with(e.family, &e.hist, bits, &data)
            .map_err(|err| format!("{phase} decode {i} ({}): {err}", e.family))?;
        if back != e.payload {
            return Err(format!("{phase} {i} ({}): decode mismatch", e.family));
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let _ = partree_exec::global();
    let threads_before = active_threads()?;
    let fds_before = open_fds()?;
    let t0 = Instant::now();
    let mark = |phase: &str| eprintln!("codecs-smoke [{:>7.2?}] {phase}", t0.elapsed());

    let store_root =
        std::env::temp_dir().join(format!("partree-codecs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let dirs: Vec<PathBuf> = (0..REPLICAS)
        .map(|i| store_root.join(format!("replica-{i}")))
        .collect();

    let expected = Arc::new(build_expected()?);
    mark("mixed-family workload pre-answered on a direct service");

    let mut servers: Vec<Option<Server>> = dirs
        .iter()
        .map(|dir| {
            Server::bind(Service::start(replica_cfg(dir, false)), "127.0.0.1:0")
                .map(Some)
                .map_err(|e| format!("bind: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<_> = servers.iter().map(|s| s.as_ref().unwrap().addr()).collect();

    let mut cfg = GatewayConfig::new(addrs.clone());
    cfg.deadline = Duration::from_secs(2);
    cfg.probe_interval = Duration::from_millis(25);
    cfg.breaker.failure_threshold = 1;
    cfg.breaker.open_cooldown = Duration::from_millis(200);
    // No hedging: a hedge could route a foreign key onto the restarted
    // replica and blur the zero-reconstruction assertion.
    cfg.hedge_after_min = Duration::from_secs(5);
    let gw = Gateway::start(cfg);

    // Phase 1 — populate: every (histogram, family) pair is built on
    // its home replica and written through as a family-tagged record.
    drive(&gw, &expected, "populate")?;
    mark("phase 1 (populate) done — mixed-family tier-1 logs written");

    let snap = gw.snapshot();
    for f in FamilyId::ALL {
        if snap.family_requests[f.index()] == 0 {
            return Err(format!(
                "gateway never counted a {f} request: {:?}",
                snap.family_requests
            ));
        }
    }

    // Phase 2 — kill the victim and keep serving: its keys fail over,
    // making them donor-visible for the warm-up that follows.
    let killed = servers[VICTIM].take().ok_or("victim already taken")?;
    let dead_svc = killed.service().clone();
    killed
        .shutdown()
        .map_err(|e| format!("kill replica {VICTIM}: {e}"))?;
    dead_svc.shutdown();
    drop(dead_svc);
    drive(&gw, &expected, "failover")?;
    mark("phase 2 (failover) done — survivors absorbed the victim's keys");

    // Phase 3 — restart onto the same mixed-family store, same address;
    // the prober warms it (family-tagged entries) before re-routing.
    let svc = Service::start(replica_cfg(&dirs[VICTIM], true));
    let revived = Server::bind(svc.clone(), &addrs[VICTIM].to_string())
        .map_err(|e| format!("rebind replica {VICTIM}: {e}"))?;
    let warm_deadline = Instant::now() + Duration::from_secs(15);
    while gw.snapshot().warmups == 0 {
        if Instant::now() >= warm_deadline {
            return Err(format!(
                "restarted replica was never warmed: {:?}",
                gw.snapshot()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    mark("phase 3 (restart) — replica revived on its mixed-family store and warmed");

    drive(&gw, &expected, "warm pass 1")?;
    drive(&gw, &expected, "warm pass 2")?;
    mark("warm passes done — all families bit-identical");

    let snap = gw.snapshot();
    if snap.warmups == 0 || snap.warmup_keys_sent == 0 {
        return Err(format!("warm-up never donated keys: {snap:?}"));
    }
    let m = svc.metrics();
    if m.encoded == 0 {
        return Err(format!(
            "restarted replica saw no traffic after warm-up: {m:?}"
        ));
    }
    if m.constructions != 0 {
        return Err(format!(
            "restarted replica rebuilt {} codebook(s) its mixed-family store should have \
             served: {m:?}",
            m.constructions
        ));
    }
    if m.store_errors != 0 {
        return Err(format!("store errors after clean restart: {m:?}"));
    }

    gw.shutdown();
    revived
        .shutdown()
        .map_err(|e| format!("shutdown revived: {e}"))?;
    svc.shutdown();
    drop(svc);
    for s in servers.into_iter().flatten() {
        let svc = s.service().clone();
        s.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        svc.shutdown();
    }
    mark("gateway and replicas shut down");

    // Leak checks: threads and fds must return to (at most) their
    // pre-fleet counts. Polled because socket teardown is asynchronous.
    for _ in 0..50 {
        if active_threads()? <= threads_before && open_fds()? <= fds_before + 2 {
            let _ = std::fs::remove_dir_all(&store_root);
            println!(
                "codecs-smoke OK: {} mixed-family items served 3x bit-identically, \
                 restart answered with 0 reconstructions ({} tier-1 hits), \
                 warm-up donated {} key(s)",
                expected.len(),
                m.tier1_hits,
                snap.warmup_keys_sent
            );
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!(
        "leak: threads {} -> {}, fds {} -> {} after shutdown",
        threads_before,
        active_threads()?,
        fds_before,
        open_fds()?
    ))
}

/// Counts this process's live threads via procfs (Linux CI).
fn active_threads() -> Result<usize, String> {
    match std::fs::read_dir("/proc/self/task") {
        Ok(entries) => Ok(entries.count()),
        // Not on Linux: fall back to "no leak detected".
        Err(_) => Ok(usize::MAX),
    }
}

/// Counts this process's open file descriptors via procfs (Linux CI).
fn open_fds() -> Result<usize, String> {
    match std::fs::read_dir("/proc/self/fd") {
        Ok(entries) => Ok(entries.count()),
        // Not on Linux: fall back to "no leak detected" (0 passes any
        // `<= before + slack` comparison against a usize::MAX baseline).
        Err(_) => Ok(0),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("codecs-smoke FAILED: {e}");
        std::process::exit(1);
    }
}
