//! CI smoke test for the gateway: three replicas under concurrent
//! load, one slowed to force hedging, one killed mid-run to force
//! failover. Asserts ≥99% of requests succeed inside the deadline,
//! every response is byte-identical to a direct single-service run,
//! the router's metrics show the machinery actually engaged (retries,
//! hedges, an opened breaker), and no threads leak.
//!
//! Exits non-zero with a message on stderr on any failure; the CI step
//! wraps this in a timeout so a hung shutdown also fails.

use partree_gateway::{Gateway, GatewayConfig};
use partree_service::frame::{Histogram, Request, Response};
use partree_service::net::Server;
use partree_service::server::{Service, ServiceConfig};
use partree_service::FamilyId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const REPLICAS: usize = 3;
const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 80;
const KILL_AFTER: Duration = Duration::from_millis(150);
/// Pacing between a client's requests, so the load phase reliably spans
/// the mid-run kill instead of finishing inside the pre-kill window.
const PACE: Duration = Duration::from_millis(3);

/// One pre-verified workload item: the request and the bytes a direct
/// service produced for it.
struct Expected {
    hist: Histogram,
    payload: Vec<u8>,
    bit_len: u64,
    data: Vec<u8>,
}

/// Deterministic pseudo-random payload over `n` symbols.
fn payload(n: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % n as u64) as u8
        })
        .collect()
}

/// Builds the workload and answers every item on a direct (no-network,
/// no-gateway) service, so load-phase responses can be compared
/// byte-for-byte.
fn build_expected() -> Result<Vec<Expected>, String> {
    let direct = Service::start(ServiceConfig::default());
    let mut out = Vec::new();
    for i in 0..24u64 {
        let n = [2usize, 5, 16, 64, 256][i as usize % 5];
        // Lead with one of each symbol so every count is nonzero (the
        // codec wants dense histograms), then append random bulk.
        let mut msg: Vec<u8> = (0..n as u16).map(|s| s as u8).collect();
        msg.extend(payload(n, i, 64 + (i as usize % 128)));
        let hist =
            Histogram::of_payload(n, &msg).map_err(|e| format!("workload {i}: {}", e.message))?;
        match direct.submit(Request::Encode {
            family: FamilyId::Huffman,
            histogram: hist.clone(),
            payload: msg.clone(),
        }) {
            Response::Encoded { bit_len, data } => out.push(Expected {
                hist,
                payload: msg,
                bit_len,
                data,
            }),
            other => return Err(format!("direct encode {i} failed: {other:?}")),
        }
    }
    direct.shutdown();
    Ok(out)
}

fn run() -> Result<(), String> {
    let _ = partree_exec::global();
    let threads_before = active_threads()?;
    let t0 = std::time::Instant::now();
    let mark = |phase: &str| eprintln!("gateway-smoke [{:>7.2?}] {phase}", t0.elapsed());

    let expected = Arc::new(build_expected()?);
    mark("workload pre-answered on a direct service");

    let mut servers: Vec<Option<Server>> = (0..REPLICAS)
        .map(|_| {
            Server::bind(Service::start(ServiceConfig::default()), "127.0.0.1:0")
                .map(Some)
                .map_err(|e| format!("bind: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let addrs = servers.iter().map(|s| s.as_ref().unwrap().addr()).collect();

    let mut cfg = GatewayConfig::new(addrs);
    cfg.deadline = Duration::from_secs(2);
    cfg.probe_interval = Duration::from_millis(25);
    cfg.breaker.open_cooldown = Duration::from_millis(200);
    let gw = Arc::new(Gateway::start(cfg));

    // Phase 1 — warm: every workload item once, so the codebook caches
    // and the gateway's latency EWMA have data.
    for (i, e) in expected.iter().enumerate() {
        let (bits, data) = gw
            .encode(&e.hist, &e.payload)
            .map_err(|err| format!("warm {i}: {err}"))?;
        if (bits, &data) != (e.bit_len, &e.data) {
            return Err(format!("warm {i}: gateway bytes differ from direct run"));
        }
    }

    mark("phase 1 (warm) done");

    // Phase 2 — hedge: slow replica 2 past the adaptive threshold and
    // push the workload through again; items homed there must be
    // rescued by hedges, not by waiting.
    servers[2].as_ref().unwrap().faults().set_delay_ms(150);
    for (i, e) in expected.iter().enumerate() {
        let (bits, data) = gw
            .encode(&e.hist, &e.payload)
            .map_err(|err| format!("hedge phase {i}: {err}"))?;
        if (bits, &data) != (e.bit_len, &e.data) {
            return Err(format!("hedge phase {i}: bytes differ from direct run"));
        }
    }
    servers[2].as_ref().unwrap().faults().set_delay_ms(0);
    mark("phase 2 (hedge) done");

    // Phase 3 — failover under load: concurrent clients, replica 1
    // killed mid-run.
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let gw = Arc::clone(&gw);
            let expected = Arc::clone(&expected);
            let ok = Arc::clone(&ok);
            let failed = Arc::clone(&failed);
            std::thread::spawn(move || -> Result<(), String> {
                for r in 0..REQUESTS_PER_CLIENT {
                    std::thread::sleep(PACE);
                    let e = &expected[(c * 7 + r) % expected.len()];
                    match gw.encode(&e.hist, &e.payload) {
                        Ok((bits, data)) => {
                            if (bits, &data) != (e.bit_len, &e.data) {
                                return Err(format!(
                                    "client {c} req {r}: bytes differ from direct run"
                                ));
                            }
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Ok(())
            })
        })
        .collect();

    std::thread::sleep(KILL_AFTER);
    let killed = servers[1].take().unwrap();
    killed
        .shutdown()
        .map_err(|e| format!("kill replica 1: {e}"))?;
    mark("replica 1 killed");

    for w in workers {
        w.join().map_err(|_| "client thread panicked")??;
    }
    mark("phase 3 (failover load) done");

    let ok = ok.load(Ordering::Relaxed);
    let failed = failed.load(Ordering::Relaxed);
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    if ok + failed != total {
        return Err(format!("accounting: {ok} + {failed} != {total}"));
    }
    if failed * 100 > total {
        return Err(format!(
            "failover success rate below 99%: {ok}/{total} succeeded"
        ));
    }

    let snap = gw.snapshot();
    if snap.retries == 0 {
        return Err(format!("killed replica produced no retries: {snap:?}"));
    }
    if snap.hedges_issued == 0 || snap.hedges_won == 0 {
        return Err(format!(
            "slow replica produced no winning hedges: issued {}, won {}",
            snap.hedges_issued, snap.hedges_won
        ));
    }
    if snap.replicas[1].breaker_opened == 0 {
        return Err(format!(
            "breaker never opened on the killed replica: {snap:?}"
        ));
    }

    let gw = Arc::try_unwrap(gw).map_err(|_| "gateway still shared after join")?;
    gw.shutdown();
    for s in servers.into_iter().flatten() {
        s.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    }
    mark("gateway and surviving replicas shut down");

    for _ in 0..50 {
        if active_threads()? <= threads_before {
            println!(
                "gateway-smoke OK: {ok}/{total} under-load roundtrips bit-identical \
                 ({failed} shed), retries {}, hedges {}/{}, replica-1 breaker opened {}x",
                snap.retries, snap.hedges_won, snap.hedges_issued, snap.replicas[1].breaker_opened
            );
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!(
        "thread leak: {} threads before, {} after shutdown",
        threads_before,
        active_threads()?
    ))
}

/// Counts this process's live threads via procfs (Linux CI).
fn active_threads() -> Result<usize, String> {
    match std::fs::read_dir("/proc/self/task") {
        Ok(entries) => Ok(entries.count()),
        // Not on Linux: fall back to "no leak detected".
        Err(_) => Ok(usize::MAX),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("gateway-smoke FAILED: {e}");
        std::process::exit(1);
    }
}
