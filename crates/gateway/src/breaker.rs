//! Per-replica circuit breaker: closed → open → half-open → closed.
//!
//! The breaker converts a *stream* of failures into a routing decision.
//! Closed passes everything; a run of `failure_threshold` consecutive
//! failures opens it, which removes the replica from routing for
//! `open_cooldown`; after the cooldown the first `allow` transitions to
//! half-open and admits exactly **one** probe request — concurrent
//! `allow` calls are refused until that probe resolves. One success
//! re-closes, one failure re-opens and restarts the cooldown. The
//! single-probe rule is what keeps a recovering replica from being
//! trampled: without it, every waiting caller rushes in the instant the
//! cooldown ends, and a replica that is up-but-cold gets re-opened by
//! its own thundering herd.
//!
//! The state machine is small enough to check, so it is: the scenarios
//! in [`crate::model`] run this exact source under the bounded model
//! checker (`--cfg partree_model`), covering the concurrent-trip and
//! probe-admission races.
//!
//! What counts as a failure is the *caller's* decision, and partree
//! draws the line at liveness: transport errors and `ShuttingDown`
//! trip the breaker, while `Busy`/`Timeout` do not — a saturated
//! replica is alive, and opening on backpressure would amputate
//! capacity exactly when it is scarcest.

use crate::sync::{AtomicU64, Mutex, Ordering};
use std::time::{Duration, Instant};

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are routed elsewhere until the cooldown ends.
    Open,
    /// Probing: letting traffic through to learn whether the replica
    /// recovered.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name, used in metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Breaker tunables.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// How long an open breaker blocks before probing.
    pub open_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(500),
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// A half-open probe has been admitted and has not yet resolved;
    /// further `allow` calls are refused until it does.
    probe_inflight: bool,
}

/// One replica's breaker. All methods are cheap (one short mutex) and
/// callable from any thread.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
    /// Times the breaker has transitioned closed/half-open → open.
    opened_total: AtomicU64,
}

impl Breaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_inflight: false,
            }),
            opened_total: AtomicU64::new(0),
        }
    }

    /// Routing gate. `Closed` allows; `Open` blocks until the cooldown
    /// has elapsed, at which point this call itself performs the
    /// open → half-open transition and admits the probe; `HalfOpen`
    /// refuses everything while the probe is in flight — exactly one
    /// caller wins the probe slot per half-open episode.
    pub fn allow(&self) -> bool {
        // lint: allow(no-unwrap): a poisoned breaker lock means a panic mid-transition; its state is untrustworthy and crashing beats routing on it
        let mut g = self.inner.lock().expect("breaker poisoned");
        match g.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => !std::mem::replace(&mut g.probe_inflight, true),
            BreakerState::Open => {
                let elapsed = g.opened_at.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
                if elapsed >= self.cfg.open_cooldown {
                    g.state = BreakerState::HalfOpen;
                    g.probe_inflight = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A liveness success: resets the failure run, resolves any
    /// in-flight probe, and re-closes a half-open breaker.
    pub fn record_success(&self) {
        // lint: allow(no-unwrap): poisoned breaker lock, as above
        let mut g = self.inner.lock().expect("breaker poisoned");
        g.consecutive_failures = 0;
        g.state = BreakerState::Closed;
        g.opened_at = None;
        g.probe_inflight = false;
    }

    /// A liveness failure: trips a closed breaker at the threshold and
    /// re-opens a half-open one immediately (a failed probe restarts
    /// the cooldown).
    pub fn record_failure(&self) {
        // lint: allow(no-unwrap): poisoned breaker lock, as above
        let mut g = self.inner.lock().expect("breaker poisoned");
        g.consecutive_failures = g.consecutive_failures.saturating_add(1);
        g.probe_inflight = false;
        let trip = match g.state {
            BreakerState::Closed => g.consecutive_failures >= self.cfg.failure_threshold,
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if trip {
            g.state = BreakerState::Open;
            g.opened_at = Some(Instant::now());
            // ordering: Relaxed — monotonic metrics counter.
            self.opened_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current state (open breakers are *not* auto-promoted here; only
    /// [`Breaker::allow`] performs the half-open transition).
    pub fn state(&self) -> BreakerState {
        // lint: allow(no-unwrap): poisoned breaker lock, as above
        self.inner.lock().expect("breaker poisoned").state
    }

    /// Times this breaker has opened.
    pub fn opened_total(&self) -> u64 {
        // ordering: Relaxed — metrics read.
        self.opened_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(30),
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = Breaker::new(fast());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert_eq!(b.opened_total(), 1);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let b = Breaker::new(fast());
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "run was reset");
    }

    #[test]
    fn cooldown_leads_to_half_open_then_closed_or_reopened() {
        let b = Breaker::new(fast());
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow(), "cooldown elapsed: probe allowed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe re-opens immediately and restarts the cooldown.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert_eq!(b.opened_total(), 2);
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn half_open_admits_exactly_one_probe_per_episode() {
        let b = Breaker::new(BreakerConfig {
            failure_threshold: 1,
            open_cooldown: Duration::ZERO,
        });
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: the next allow is the probe...
        assert!(b.allow(), "first caller wins the probe slot");
        // ...and everyone else is refused until it resolves.
        assert!(!b.allow());
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe failure re-opens and frees the slot for the next episode.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(), "new episode, new probe");
        assert!(!b.allow());
        // Probe success re-closes; traffic flows freely again.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow() && b.allow());
    }
}
