//! Gateway counters: request-level outcomes plus one latency histogram
//! and health view per replica, exported as hand-written JSON (same
//! no-external-crates convention as `partree-service::metrics`; the
//! schema is in `EXPERIMENTS.md` § E15).

use crate::breaker::BreakerState;
use partree_service::{FamilyId, FAMILY_COUNT};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Log₂ latency buckets in microseconds: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` µs (bucket 0 also catches sub-µs); the last bucket
/// is open-ended. 2⁰µs … 2¹⁹µs ≈ 0.5 s spans loopback to deadline.
pub const LATENCY_BUCKETS: usize = 20;

/// Bucket index for a latency in microseconds.
pub fn latency_bucket(us: u64) -> usize {
    (63 - u64::leading_zeros(us.max(1)) as usize).min(LATENCY_BUCKETS - 1)
}

/// Per-replica counters (all relaxed atomics).
#[derive(Debug, Default)]
pub struct ReplicaMetrics {
    /// Attempts sent to this replica (including hedges and probes are
    /// *not* counted here — data requests only).
    pub attempts: AtomicU64,
    /// Attempts that returned a terminal response.
    pub successes: AtomicU64,
    /// Attempts that failed at the liveness layer: transport errors
    /// plus `ShuttingDown` responses. These are the breaker's inputs.
    pub transport_errors: AtomicU64,
    /// `Busy`/`Timeout` responses (replica alive but couldn't serve:
    /// queue full, draining, or server-side deadline miss).
    pub busy: AtomicU64,
    /// Health probes answered.
    pub pings_ok: AtomicU64,
    /// Health probes failed.
    pub pings_failed: AtomicU64,
    /// Successful-attempt latency histogram (log₂ µs buckets).
    pub latency: [AtomicU64; LATENCY_BUCKETS],
    /// Sum of successful-attempt latencies, µs.
    pub latency_us_total: AtomicU64,
    /// Max successful-attempt latency, µs.
    pub latency_us_max: AtomicU64,
}

impl ReplicaMetrics {
    /// Folds one successful attempt latency into the histogram.
    pub fn record_latency(&self, us: u64) {
        self.latency[latency_bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.latency_us_total.fetch_add(us, Ordering::Relaxed);
        let mut cur = self.latency_us_max.load(Ordering::Relaxed);
        while us > cur {
            match self.latency_us_max.compare_exchange_weak(
                cur,
                us,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Gateway-level counters (all relaxed atomics).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests entering the router.
    pub requests: AtomicU64,
    /// Requests answered with a terminal response inside the deadline.
    pub completed: AtomicU64,
    /// Retry attempts launched (beyond each request's first attempt;
    /// hedges are counted separately).
    pub retries: AtomicU64,
    /// Requests whose *winning* attempt ran on a replica other than the
    /// rendezvous home shard.
    pub failovers: AtomicU64,
    /// Hedge attempts launched after the adaptive latency threshold.
    pub hedges_issued: AtomicU64,
    /// Hedges whose response arrived before the primary's.
    pub hedges_won: AtomicU64,
    /// Requests that exhausted their deadline budget.
    pub deadline_exceeded: AtomicU64,
    /// Requests routed with every breaker open (best-effort fallback to
    /// the full preference order).
    pub no_healthy_replica: AtomicU64,
    /// Requests rejected because the gateway is shutting down.
    pub rejected_shutdown: AtomicU64,
    /// Warm-up rounds completed: a recovered replica was refilled from
    /// a healthy donor's hot set before its breaker re-closed.
    pub warmups: AtomicU64,
    /// Codebooks donated across all warm-up rounds.
    pub warmup_keys_sent: AtomicU64,
    /// Codec requests entering the router, by code family (indexed by
    /// [`FamilyId::index`]; legacy opcodes count as Huffman).
    pub family_requests: [AtomicU64; FAMILY_COUNT],
}

/// Plain-data per-replica view, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSnapshot {
    /// Replica index (position in the gateway's replica list).
    pub id: usize,
    /// Replica address.
    pub addr: String,
    /// Attempts sent.
    pub attempts: u64,
    /// Terminal responses.
    pub successes: u64,
    /// Transport-layer failures.
    pub transport_errors: u64,
    /// `Busy` responses.
    pub busy: u64,
    /// Probes answered / failed.
    pub pings_ok: u64,
    /// Probes failed.
    pub pings_failed: u64,
    /// Latency histogram (log₂ µs buckets).
    pub latency: Vec<u64>,
    /// Latency sum, µs.
    pub latency_us_total: u64,
    /// Latency max, µs.
    pub latency_us_max: u64,
    /// Breaker state at snapshot time.
    pub breaker: BreakerState,
    /// Times this replica's breaker has opened.
    pub breaker_opened: u64,
    /// True when the replica advertises draining.
    pub draining: bool,
}

/// Plain-data gateway view, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewaySnapshot {
    /// Requests entering the router.
    pub requests: u64,
    /// Terminal responses inside the deadline.
    pub completed: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Winning attempts off the home shard.
    pub failovers: u64,
    /// Hedge attempts launched.
    pub hedges_issued: u64,
    /// Hedges that won.
    pub hedges_won: u64,
    /// Deadline exhaustions.
    pub deadline_exceeded: u64,
    /// All-breakers-open fallbacks.
    pub no_healthy_replica: u64,
    /// Rejected during shutdown.
    pub rejected_shutdown: u64,
    /// Warm-up rounds completed.
    pub warmups: u64,
    /// Codebooks donated across all warm-up rounds.
    pub warmup_keys_sent: u64,
    /// Codec requests by code family (indexed by [`FamilyId::index`]).
    pub family_requests: [u64; FAMILY_COUNT],
    /// Per-replica views.
    pub replicas: Vec<ReplicaSnapshot>,
}

impl Metrics {
    /// Freezes the gateway-level counters (replica rows are appended by
    /// the gateway, which owns the breaker/drain state).
    pub fn snapshot(&self, replicas: Vec<ReplicaSnapshot>) -> GatewaySnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        GatewaySnapshot {
            requests: get(&self.requests),
            completed: get(&self.completed),
            retries: get(&self.retries),
            failovers: get(&self.failovers),
            hedges_issued: get(&self.hedges_issued),
            hedges_won: get(&self.hedges_won),
            deadline_exceeded: get(&self.deadline_exceeded),
            no_healthy_replica: get(&self.no_healthy_replica),
            rejected_shutdown: get(&self.rejected_shutdown),
            warmups: get(&self.warmups),
            warmup_keys_sent: get(&self.warmup_keys_sent),
            family_requests: std::array::from_fn(|i| get(&self.family_requests[i])),
            replicas,
        }
    }
}

impl GatewaySnapshot {
    /// One JSON object: flat gateway counters plus a `replicas` array
    /// (schema in `EXPERIMENTS.md` § E15).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"requests\":{},\"completed\":{},\"retries\":{},\"failovers\":{},\
             \"hedges_issued\":{},\"hedges_won\":{},\"deadline_exceeded\":{},\
             \"no_healthy_replica\":{},\"rejected_shutdown\":{},\"warmups\":{},\
             \"warmup_keys_sent\":{},",
            self.requests,
            self.completed,
            self.retries,
            self.failovers,
            self.hedges_issued,
            self.hedges_won,
            self.deadline_exceeded,
            self.no_healthy_replica,
            self.rejected_shutdown,
            self.warmups,
            self.warmup_keys_sent,
        );
        for f in FamilyId::ALL {
            let _ = write!(
                out,
                "\"family_{}_requests\":{},",
                f.name(),
                self.family_requests[f.index()]
            );
        }
        out.push_str("\"replicas\":[");
        for (i, r) in self.replicas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"addr\":\"{}\",\"attempts\":{},\"successes\":{},\
                 \"transport_errors\":{},\"busy\":{},\"pings_ok\":{},\"pings_failed\":{},\
                 \"latency_us_total\":{},\"latency_us_max\":{},\"breaker\":\"{}\",\
                 \"breaker_opened\":{},\"draining\":{},\"latency_log2_us\":[",
                r.id,
                r.addr,
                r.attempts,
                r.successes,
                r.transport_errors,
                r.busy,
                r.pings_ok,
                r.pings_failed,
                r.latency_us_total,
                r.latency_us_max,
                r.breaker.name(),
                r.breaker_opened,
                r.draining,
            );
            for (j, b) in r.latency.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn histogram_and_json_shape() {
        let rm = ReplicaMetrics::default();
        rm.record_latency(100);
        rm.record_latency(100);
        rm.record_latency(5000);
        assert_eq!(rm.latency[latency_bucket(100)].load(Ordering::Relaxed), 2);
        assert_eq!(rm.latency_us_max.load(Ordering::Relaxed), 5000);

        let m = Metrics::default();
        m.requests.store(7, Ordering::Relaxed);
        m.family_requests[FamilyId::ShannonFano.index()].store(4, Ordering::Relaxed);
        let snap = m.snapshot(vec![ReplicaSnapshot {
            id: 0,
            addr: "127.0.0.1:9".into(),
            attempts: 3,
            successes: 3,
            transport_errors: 0,
            busy: 0,
            pings_ok: 1,
            pings_failed: 0,
            latency: (0..LATENCY_BUCKETS as u64).collect(),
            latency_us_total: 5200,
            latency_us_max: 5000,
            breaker: BreakerState::Closed,
            breaker_opened: 0,
            draining: false,
        }]);
        let json = snap.to_json();
        assert!(json.starts_with("{\"requests\":7,"));
        assert_eq!(snap.family_requests, [0, 4, 0, 0]);
        assert!(json.contains("\"family_sf_requests\":4"));
        assert!(json.contains("\"family_huffman_requests\":0"));
        assert!(json.contains("\"breaker\":\"closed\""));
        assert!(json.contains("\"latency_log2_us\":[0,1,2,"));
        assert!(json.ends_with("]}"));
    }
}
