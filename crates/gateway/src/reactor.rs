//! The gateway's reactor RPC engine: every replica connection
//! multiplexed on one epoll thread.
//!
//! The blocking attempt path spawns a thread per attempt and parks it
//! in a blocking [`partree_service::client::Client`] call. This module
//! is the drop-in alternative: [`RpcClient::call`] hands the attempt
//! to a single reactor thread that owns all sockets — non-blocking
//! connects (`SO_ERROR` read once the socket polls writable),
//! incremental frame decoding over partial reads, per-address idle
//! pools, and a deadline sweep that turns stuck connects or replies
//! into `TimedOut` errors.
//!
//! Semantics are kept deliberately identical to the blocking client:
//!
//! * one outstanding request per connection — a connection is returned
//!   to its idle pool only after a complete, id-matched response, and
//!   discarded on **any** error (a mid-frame stream can never be
//!   reused);
//! * response ids must echo request ids, and undecodable responses
//!   surface as `InvalidData`, byte-for-byte the same classification
//!   the blocking path produces;
//! * every submitted call gets **exactly one** callback invocation,
//!   enforced by a drop guard: calls still queued or in flight when
//!   the client shuts down complete with an error instead of
//!   vanishing (the gateway's `attempt_threads` accounting depends on
//!   this).
//!
//! Submission reuses the model-checked
//! [`partree_service::waker::CompletionQueue`] handshake in the
//! opposite direction: attempt threads are the producers, the reactor
//! is the sleeping consumer, and at most one `eventfd` write is paid
//! per reactor sleep.

use partree_service::frame::{
    decode_response, encode_request, FrameDecoder, RawFrame, Request, Response,
};
use partree_service::waker::CompletionQueue;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const WAKER: mio::Token = mio::Token(0);
/// Connection slot `i` registers under token `FIRST_CONN + i`.
const FIRST_CONN: usize = 1;
const EVENT_CAPACITY: usize = 256;
/// Poll timeout ceiling; bounds deadline-sweep latency.
const TICK: Duration = Duration::from_millis(50);
const READ_CHUNK: usize = 16 * 1024;

fn bad_data(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Single-shot completion callback with a drop guarantee: an
/// unanswered call completes with a shutdown error instead of leaking.
struct CallSink {
    f: Option<Box<dyn FnOnce(io::Result<Response>) + Send>>,
}

impl CallSink {
    fn new(f: impl FnOnce(io::Result<Response>) + Send + 'static) -> CallSink {
        CallSink {
            f: Some(Box::new(f)),
        }
    }

    fn complete(mut self, outcome: io::Result<Response>) {
        if let Some(f) = self.f.take() {
            f(outcome);
        }
    }
}

impl Drop for CallSink {
    fn drop(&mut self) {
        if let Some(f) = self.f.take() {
            f(Err(io::Error::other(
                "rpc client dropped the call during shutdown",
            )));
        }
    }
}

/// One queued attempt.
struct Call {
    addr: SocketAddr,
    request: Arc<Request>,
    deadline: Instant,
    connect_timeout: Duration,
    done: CallSink,
}

/// Messages from gateway threads to the reactor.
enum Msg {
    Call(Call),
    /// Close every idle connection to `addr` (the prober's equivalent
    /// of the blocking pool's clear-on-failed-ping).
    Purge(SocketAddr),
}

struct Shared {
    submits: CompletionQueue<Msg>,
    waker: mio::Waker,
    stop: AtomicBool,
}

/// Handle to the reactor thread; the gateway owns exactly one.
pub(crate) struct RpcClient {
    shared: Arc<Shared>,
    thread: Mutex<Option<std::thread::JoinHandle<io::Result<()>>>>,
}

impl std::fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient").finish()
    }
}

impl RpcClient {
    /// Starts the reactor thread. `pool_cap` bounds idle connections
    /// kept per replica address, mirroring the blocking pool.
    pub(crate) fn start(pool_cap: usize) -> io::Result<RpcClient> {
        let poll = mio::Poll::new()?;
        let waker = mio::Waker::new(&poll, WAKER)?;
        let shared = Arc::new(Shared {
            submits: CompletionQueue::new(),
            waker,
            stop: AtomicBool::new(false),
        });
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("gateway-rpc".into())
            .spawn(move || {
                Loop {
                    poll,
                    shared: loop_shared,
                    slots: Vec::new(),
                    free: Vec::new(),
                    idle: HashMap::new(),
                    pool_cap,
                    next_id: 0,
                }
                .run()
            })
            .map_err(|e| io::Error::other(format!("spawning the rpc reactor thread: {e}")))?;
        Ok(RpcClient {
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Submits one attempt; `done` fires exactly once with the outcome
    /// (on the reactor thread — it must not block).
    pub(crate) fn call(
        &self,
        addr: SocketAddr,
        request: Arc<Request>,
        deadline: Instant,
        connect_timeout: Duration,
        done: impl FnOnce(io::Result<Response>) + Send + 'static,
    ) {
        self.send(Msg::Call(Call {
            addr,
            request,
            deadline,
            connect_timeout,
            done: CallSink::new(done),
        }));
    }

    /// Drops every idle connection to `addr`.
    pub(crate) fn purge(&self, addr: SocketAddr) {
        self.send(Msg::Purge(addr));
    }

    fn send(&self, msg: Msg) {
        if self.shared.submits.push(msg) {
            // The reactor committed to epoll_wait; this push owes the
            // eventfd write that lifts it out.
            let _ = self.shared.waker.wake();
        }
    }

    /// Stops the reactor and joins it. Queued and in-flight calls
    /// complete with a shutdown error via their drop guards (their
    /// connections are dropped when the loop's slab unwinds).
    pub(crate) fn shutdown_in_place(&self) {
        self.shared.stop.store(true, Ordering::Release);
        let _ = self.shared.waker.wake();
        // lint: allow(no-unwrap): a poisoned handle mutex means a concurrent shutdown panicked mid-join; nothing sane is left to do
        if let Some(t) = self.thread.lock().expect("rpc handle poisoned").take() {
            let _ = t.join();
        }
    }
}

impl Drop for RpcClient {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The request the connection currently carries.
struct Pending {
    id: u64,
    deadline: Instant,
    done: CallSink,
}

enum State {
    /// Non-blocking connect in flight; the call is parked until the
    /// socket polls writable and `SO_ERROR` is read.
    Connecting { call: Call, give_up: Instant },
    /// Request written (or being written); awaiting the response frame.
    Active { pending: Pending },
    /// Checked into the per-address idle pool.
    Idle,
}

struct Conn {
    stream: TcpStream,
    addr: SocketAddr,
    decoder: FrameDecoder,
    out: Vec<u8>,
    written: usize,
    interest: mio::Interest,
    state: State,
}

struct Loop {
    poll: mio::Poll,
    shared: Arc<Shared>,
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Idle slot indices per address (LIFO: most recently used first).
    idle: HashMap<SocketAddr, Vec<usize>>,
    pool_cap: usize,
    next_id: u64,
}

impl Loop {
    fn run(mut self) -> io::Result<()> {
        let mut events = mio::Events::with_capacity(EVENT_CAPACITY);
        let mut inbox = Vec::new();
        // Slots freed this iteration; reuse deferred past the current
        // event batch so stale events cannot hit a recycled slot.
        let mut freed = Vec::new();
        while !self.shared.stop.load(Ordering::Acquire) {
            self.shared.submits.drain(&mut inbox);
            for msg in inbox.drain(..) {
                match msg {
                    Msg::Call(call) => self.start_call(call, &mut freed),
                    Msg::Purge(addr) => self.purge(addr, &mut freed),
                }
            }
            self.sweep_deadlines(&mut freed);

            if self.shared.submits.try_sleep() {
                let res = self.poll.poll(&mut events, Some(TICK));
                self.shared.submits.wake_up();
                res?;
            } else {
                self.poll.poll(&mut events, Some(Duration::ZERO))?;
            }
            for ev in events.iter() {
                match ev.token() {
                    WAKER => self.shared.waker.drain(),
                    mio::Token(t) => self.conn_event(t - FIRST_CONN, ev, &mut freed),
                }
            }
            self.free.append(&mut freed);
        }
        Ok(())
    }

    /// Routes a new call onto an idle connection or a fresh
    /// non-blocking connect.
    fn start_call(&mut self, call: Call, freed: &mut Vec<usize>) {
        // Reuse the most recently idle connection to this address.
        while let Some(slot) = self.idle.get_mut(&call.addr).and_then(Vec::pop) {
            let reusable = self
                .slots
                .get(slot)
                .and_then(Option::as_ref)
                .is_some_and(|c| matches!(c.state, State::Idle) && c.addr == call.addr);
            if reusable {
                self.activate(slot, call, freed);
                return;
            }
        }
        let stream = match mio::net::connect_nonblocking(call.addr) {
            Ok(s) => s,
            Err(e) => return call.done.complete(Err(e)),
        };
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        if let Err(e) = self.poll.register(
            &stream,
            mio::Token(FIRST_CONN + slot),
            mio::Interest::WRITABLE,
        ) {
            self.free.push(slot);
            return call.done.complete(Err(e));
        }
        let _ = stream.set_nodelay(true);
        let give_up = (Instant::now() + call.connect_timeout).min(call.deadline);
        let addr = call.addr;
        self.slots[slot] = Some(Conn {
            stream,
            addr,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            written: 0,
            interest: mio::Interest::WRITABLE,
            state: State::Connecting { call, give_up },
        });
    }

    /// Writes the request frame on a connected socket and arms the
    /// response wait.
    fn activate(&mut self, slot: usize, call: Call, freed: &mut Vec<usize>) {
        let id = self.next_id;
        self.next_id += 1;
        let Some(conn) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return call
                .done
                .complete(Err(io::Error::other("rpc slot vanished")));
        };
        conn.out
            .extend_from_slice(&encode_request(id, &call.request));
        conn.state = State::Active {
            pending: Pending {
                id,
                deadline: call.deadline,
                done: call.done,
            },
        };
        if flush(conn).is_err() {
            self.fail(slot, None, freed);
            return;
        }
        if self.reconcile_interest(slot).is_err() {
            self.fail(slot, None, freed);
        }
    }

    fn conn_event(&mut self, slot: usize, ev: mio::Event, freed: &mut Vec<usize>) {
        let Some(conn) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return; // closed earlier in this same event batch
        };
        match &conn.state {
            State::Connecting { .. } => {
                if !(ev.is_writable() || ev.is_error() || ev.is_read_closed()) {
                    return;
                }
                let connected = mio::net::take_error(&conn.stream);
                let State::Connecting { call, .. } =
                    std::mem::replace(&mut conn.state, State::Idle)
                else {
                    unreachable!("matched Connecting above");
                };
                match connected {
                    Ok(()) => self.activate(slot, call, freed),
                    Err(e) => {
                        call.done.complete(Err(e));
                        self.close(slot, freed);
                    }
                }
            }
            State::Active { .. } => {
                if ev.is_writable() && flush(conn).is_err() {
                    self.fail(slot, None, freed);
                    return;
                }
                if ev.is_readable() {
                    self.read_response(slot, freed);
                } else if self.reconcile_interest(slot).is_err() {
                    self.fail(slot, None, freed);
                }
            }
            State::Idle => {
                // Any readiness on an idle connection means the peer
                // closed it (or broke protocol): drop it quietly. The
                // idle-list entry goes stale and is skipped on pop.
                self.close(slot, freed);
            }
        }
    }

    /// Drains readable bytes into the decoder; a completed, id-matched
    /// frame finishes the call and returns the connection to the pool.
    fn read_response(&mut self, slot: usize, freed: &mut Vec<usize>) {
        let Some(conn) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut frame: Option<RawFrame> = None;
        let mut failure: Option<io::Error> = None;
        let mut buf = [0u8; READ_CHUNK];
        'reading: loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    failure = Some(bad_data("server closed the connection mid-request"));
                    break;
                }
                Ok(n) => {
                    let mut off = 0;
                    while off < n {
                        match conn.decoder.advance(&buf[off..n]) {
                            Ok((used, done)) => {
                                off += used;
                                if let Some(f) = done {
                                    if frame.replace(f).is_some() || off < n {
                                        // A second frame (or trailing
                                        // bytes) on a one-outstanding
                                        // connection: protocol breach.
                                        failure =
                                            Some(bad_data("unexpected extra bytes after response"));
                                    }
                                    break 'reading;
                                }
                            }
                            Err(e) => {
                                failure = Some(e);
                                break 'reading;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            self.fail(slot, Some(e), freed);
            return;
        }
        let Some(raw) = frame else { return }; // mid-frame: keep waiting
        self.finish_call(slot, raw, freed);
    }

    fn finish_call(&mut self, slot: usize, raw: RawFrame, freed: &mut Vec<usize>) {
        let Some(conn) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let State::Active { pending } = std::mem::replace(&mut conn.state, State::Idle) else {
            // A response with no call outstanding: drop the connection.
            self.close(slot, freed);
            return;
        };
        if raw.id != pending.id {
            pending.done.complete(Err(bad_data(format!(
                "response id {} does not echo request id {}",
                raw.id, pending.id
            ))));
            self.close(slot, freed);
            return;
        }
        pending
            .done
            .complete(decode_response(raw.opcode, &raw.body).map_err(bad_data));
        self.checkin(slot, freed);
    }

    /// Returns a cleanly-answered connection to its address pool, or
    /// closes it when the pool is full.
    fn checkin(&mut self, slot: usize, freed: &mut Vec<usize>) {
        let Some(conn) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let addr = conn.addr;
        if self.reconcile_interest(slot).is_err() {
            self.close(slot, freed);
            return;
        }
        let pool = self.idle.entry(addr).or_default();
        if pool.len() >= self.pool_cap {
            self.close(slot, freed);
        } else {
            pool.push(slot);
        }
    }

    /// Completes the connection's call (if any) with `error` — or a
    /// generic transport error — and closes it.
    fn fail(&mut self, slot: usize, error: Option<io::Error>, freed: &mut Vec<usize>) {
        if let Some(conn) = self.slots.get_mut(slot).and_then(Option::as_mut) {
            let e = error.unwrap_or_else(|| io::Error::other("rpc connection failed"));
            match std::mem::replace(&mut conn.state, State::Idle) {
                State::Connecting { call, .. } => call.done.complete(Err(e)),
                State::Active { pending } => pending.done.complete(Err(e)),
                State::Idle => {}
            }
        }
        self.close(slot, freed);
    }

    /// Times out stuck connects and overdue responses.
    fn sweep_deadlines(&mut self, freed: &mut Vec<usize>) {
        let now = Instant::now();
        let overdue: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, entry)| {
                let conn = entry.as_ref()?;
                let due = match &conn.state {
                    State::Connecting { call, give_up } => (*give_up).min(call.deadline),
                    State::Active { pending } => pending.deadline,
                    State::Idle => return None,
                };
                (due <= now).then_some(slot)
            })
            .collect();
        for slot in overdue {
            self.fail(
                slot,
                Some(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "rpc attempt missed its deadline",
                )),
                freed,
            );
        }
    }

    fn purge(&mut self, addr: SocketAddr, freed: &mut Vec<usize>) {
        for slot in self.idle.remove(&addr).unwrap_or_default() {
            let is_idle = self
                .slots
                .get(slot)
                .and_then(Option::as_ref)
                .is_some_and(|c| matches!(c.state, State::Idle) && c.addr == addr);
            if is_idle {
                self.close(slot, freed);
            }
        }
    }

    /// `WRITABLE` only while bytes are queued; `READABLE` always (an
    /// idle or waiting connection must notice a peer close).
    fn reconcile_interest(&mut self, slot: usize) -> io::Result<()> {
        let Some(conn) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return Ok(());
        };
        let want = if conn.written < conn.out.len() {
            mio::Interest::READABLE.add(mio::Interest::WRITABLE)
        } else {
            mio::Interest::READABLE
        };
        if want != conn.interest {
            self.poll
                .reregister(&conn.stream, mio::Token(FIRST_CONN + slot), want)?;
            conn.interest = want;
        }
        Ok(())
    }

    fn close(&mut self, slot: usize, freed: &mut Vec<usize>) {
        if let Some(conn) = self.slots.get_mut(slot).and_then(Option::take) {
            let _ = self.poll.deregister(&conn.stream);
            freed.push(slot);
        }
    }
}

/// Writes queued bytes until the socket would block or the buffer
/// empties.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while conn.written < conn.out.len() {
        match conn.stream.write(&conn.out[conn.written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.written == conn.out.len() {
        conn.out.clear();
        conn.written = 0;
    }
    Ok(())
}
