//! Theorem 6.1 — the assembled approximate-OBST pipeline.
//!
//! 1. `δ = ε / (2 n log n)` (relative to the total weight); collapse
//!    maximal small runs ([`crate::collapse`]);
//! 2. height bound `H = C + log(1/δ)/log φ` (Lemma 6.1 — every subtree
//!    of the collapsed optimal tree weighing ≥ δ sits above depth `H`),
//!    clamped to at least the packing bound `⌈log₂(n'+1)⌉ + 1`;
//! 3. solve the collapsed instance exactly among height-≤`H` trees with
//!    concave matrix products ([`crate::height_bounded`]);
//! 4. expand collapsed gaps into balanced subtrees of height ≤ `log n`.
//!
//! Lemma 6.2: the result is within `ε` (times the total weight, for
//! unnormalized inputs) of the true optimum.

use crate::collapse::collapse_runs;
use crate::height_bounded::{min_feasible_height, obst_height_bounded, reconstruct};
use crate::model::{BstNode, ObstInstance};
use partree_core::{Cost, Error, Result};
use partree_pram::CostTracer;

/// Result of the approximate construction.
pub struct ApproxObst {
    /// The search tree over the original instance.
    pub tree: BstNode,
    /// Its weighted path length.
    pub cost: Cost,
    /// The height bound used for the collapsed DP.
    pub height_bound: u32,
    /// Keys remaining after collapsing.
    pub collapsed_keys: usize,
}

/// Builds a BST whose weighted path length is within `eps · total`
/// of optimal (`0 < eps < 1`).
///
/// ```
/// use partree_obst::{approx_optimal_bst, ObstInstance};
///
/// let inst = ObstInstance::new(vec![10.0, 1.0, 20.0], vec![2.0, 1.0, 1.0, 2.0])?;
/// let approx = approx_optimal_bst(&inst, 0.1)?;
/// approx.tree.validate(3)?;
/// let exact = partree_obst::knuth::obst_knuth(&inst).cost();
/// assert!(approx.cost.value() - exact.value() <= 0.1 * inst.total());
/// # Ok::<(), partree_core::Error>(())
/// ```
///
pub fn approx_optimal_bst(inst: &ObstInstance, eps: f64) -> Result<ApproxObst> {
    approx_optimal_bst_traced(inst, eps, &CostTracer::disabled())
}

/// [`approx_optimal_bst`] with per-phase work/depth tracing. Spans
/// opened on `tracer`: `collapse` (one parallel sweep over the keys),
/// `height_bounded_dp` (`H` concave products — depth `O(log(1/δ)·log n)`),
/// and `expand` (one round per collapsed gap).
pub fn approx_optimal_bst_traced(
    inst: &ObstInstance,
    eps: f64,
    tracer: &CostTracer,
) -> Result<ApproxObst> {
    if !(0.0..1.0).contains(&eps) || eps <= 0.0 {
        return Err(Error::invalid("eps must lie in (0, 1)"));
    }
    let n = inst.n();
    if n == 0 {
        let tree = BstNode::Leaf(0);
        return Ok(ApproxObst {
            tree,
            cost: Cost::ZERO,
            height_bound: 0,
            collapsed_keys: 0,
        });
    }
    let total = inst.total();
    if total <= 0.0 {
        return Err(Error::invalid("total weight must be positive"));
    }

    // Step 1: collapse. δ = ε / (2 n log n), relative to total weight.
    let logn = (n.max(2) as f64).log2();
    let delta = eps / (2.0 * n as f64 * logn);
    let collapse = tracer.span("collapse");
    let collapsed = collapse_runs(inst, delta * total);
    let n_prime = collapsed.inst.n();
    collapse.step(n as u64); // one sweep over the keys

    // Step 2: the GMS height bound (φ = golden ratio), plus slack for
    // the packing constraint.
    let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
    let gms = (2.0 + (1.0 / delta).log2() / phi.log2()).ceil() as u32;
    // A chain always fits n' keys in height n', so bounds beyond that
    // are vacuous — clamp to keep the number of squarings ≤ n'.
    let height = gms
        .min(n_prime.max(1) as u32)
        .max(min_feasible_height(n_prime) + 1);

    // Step 3: exact height-bounded optimum on the collapsed instance.
    let hb = obst_height_bounded(
        &collapsed.inst,
        height,
        true,
        &tracer.span("height_bounded_dp"),
    );
    let core = reconstruct(&hb, 0, n_prime).ok_or_else(|| {
        Error::Internal(format!(
            "no height-{height} tree for {n_prime} collapsed keys"
        ))
    })?;

    // Step 4: expand.
    let expand = tracer.span("expand");
    let tree = collapsed.expand(&core);
    expand.step((n - n_prime) as u64); // leaves re-materialized
    tree.validate(n)?;
    let cost = tree.weighted_path_length(inst);
    Ok(ApproxObst {
        tree,
        cost,
        height_bound: height,
        collapsed_keys: n_prime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knuth::obst_knuth;

    fn check_gap(inst: &ObstInstance, eps: f64) -> (f64, f64) {
        let approx = approx_optimal_bst(inst, eps).unwrap();
        approx.tree.validate(inst.n()).unwrap();
        let opt = obst_knuth(inst).cost();
        let gap = approx.cost.value() - opt.value();
        assert!(gap >= -1e-9, "approx beat the optimum?!");
        let bound = eps * inst.total();
        assert!(
            gap <= bound + 1e-9,
            "gap {gap} > ε·W = {bound} (n={}, eps={eps})",
            inst.n()
        );
        (gap, bound)
    }

    #[test]
    fn within_eps_on_random_instances() {
        for seed in 0..10 {
            let inst = ObstInstance::random(24, 100, seed);
            check_gap(&inst, 1.0 / 24.0);
        }
    }

    #[test]
    fn within_eps_on_skewed_instances() {
        for seed in 0..5 {
            let mut inst = ObstInstance::random(20, 10, seed);
            inst.q[0] = 100_000.0;
            inst.p[20] = 50_000.0;
            check_gap(&inst, 0.05);
        }
    }

    #[test]
    fn instances_with_many_small_frequencies_collapse() {
        // Mostly tiny frequencies with a few heavy keys: collapsing must
        // shrink the instance, and the answer must stay within ε.
        let mut q = vec![0.001; 30];
        let mut p = vec![0.001; 31];
        q[10] = 500.0;
        q[20] = 300.0;
        p[15] = 200.0;
        let inst = ObstInstance::new(q, p).unwrap();
        let approx = approx_optimal_bst(&inst, 0.01).unwrap();
        assert!(approx.collapsed_keys < 30, "nothing collapsed");
        let opt = obst_knuth(&inst).cost();
        assert!(approx.cost.value() - opt.value() <= 0.01 * inst.total() + 1e-9);
    }

    #[test]
    fn exactness_when_nothing_is_small() {
        // All frequencies comparable: no collapsing, generous height ⇒
        // the approximation is exactly optimal.
        let inst = ObstInstance::random(12, 100, 7);
        let approx = approx_optimal_bst(&inst, 0.5).unwrap();
        let opt = obst_knuth(&inst).cost();
        assert_eq!(approx.cost, opt);
        assert_eq!(approx.collapsed_keys, 12);
    }

    #[test]
    fn tighter_eps_never_hurts_quality() {
        let inst = ObstInstance::random(16, 50, 3);
        let loose = approx_optimal_bst(&inst, 0.2).unwrap();
        let tight = approx_optimal_bst(&inst, 0.01).unwrap();
        assert!(tight.cost <= loose.cost);
        assert!(tight.height_bound >= loose.height_bound);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = ObstInstance::new(vec![], vec![5.0]).unwrap();
        let a = approx_optimal_bst(&empty, 0.1).unwrap();
        assert_eq!(a.cost, Cost::ZERO);

        let one = ObstInstance::new(vec![3.0], vec![1.0, 1.0]).unwrap();
        let a = approx_optimal_bst(&one, 0.1).unwrap();
        assert_eq!(a.cost, obst_knuth(&one).cost());

        assert!(approx_optimal_bst(&one, 0.0).is_err());
        assert!(approx_optimal_bst(&one, 1.5).is_err());
    }
}
