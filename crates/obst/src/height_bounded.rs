//! Height-bounded OBSTs by concave matrix multiplication.
//!
//! The analogue of the Huffman `A_h` recurrence for search trees:
//! `E_h[i, j]` is the cheapest BST over keys `i+1..j` of height ≤ `h`.
//!
//! ```text
//! E_0[i, i] = 0, +∞ elsewhere
//! E_h[i, j] = min_{i<k≤j} E_{h-1}[i, k-1] + E_{h-1}[k, j] + w(i, j)
//! ```
//!
//! The `k-1`/`k` offset is folded into the product by shifting the left
//! operand's columns (`L[i, k] = E_{h-1}[i, k-1]`), which preserves
//! concavity; each round is then one concave product — the paper's
//! "like the problem of constructing optimal Huffman trees of bounded
//! height, this problem can also be reduced to multiplication of
//! concave matrices".

use crate::model::{BstNode, ObstInstance};
use partree_core::Cost;
use partree_monge::cut::concave_mul;
use partree_monge::Matrix;
use partree_pram::CostTracer;

/// Result of the height-bounded OBST phase.
pub struct HeightBoundedObst {
    /// `E_H` (boundaries `0..=n`).
    pub final_matrix: Matrix,
    /// The computed height bound.
    pub height: u32,
    /// Root witnesses per round (`cuts[t]` built `E_{t+1}`), kept when
    /// requested for reconstruction.
    pub cuts: Option<Vec<Vec<u32>>>,
}

/// Computes `E_H` with `H` concave products.
pub fn obst_height_bounded(
    inst: &ObstInstance,
    height: u32,
    retain_cuts: bool,
    tracer: &CostTracer,
) -> HeightBoundedObst {
    let n = inst.n();
    let w = Matrix::from_fn(n + 1, n + 1, |i, j| {
        if i < j {
            inst.weight(i, j)
        } else {
            Cost::INFINITY
        }
    });

    let mut e = Matrix::from_fn(n + 1, n + 1, |i, j| {
        if i == j {
            Cost::ZERO
        } else {
            Cost::INFINITY
        }
    });
    let mut cuts = retain_cuts.then(Vec::new);

    for _ in 0..height {
        // Left operand with shifted columns: L[i][k] = E[i][k-1].
        let l = Matrix::from_fn(n + 1, n + 1, |i, k| {
            if k == 0 {
                Cost::INFINITY
            } else {
                e.get(i, k - 1)
            }
        });
        let prod = concave_mul(&l, &e, tracer);
        let next = prod.values.entrywise_add(&w).entrywise_min(&e);
        e = next;
        if let Some(c) = cuts.as_mut() {
            c.push(prod.cut);
        }
    }

    HeightBoundedObst {
        final_matrix: e,
        height,
        cuts,
    }
}

/// Reconstructs the optimal height-≤`H` BST over keys `i+1..j` from
/// retained witnesses. `None` when no such tree exists.
pub fn reconstruct(hb: &HeightBoundedObst, i: usize, j: usize) -> Option<BstNode> {
    let cuts = hb.cuts.as_ref()?;
    if hb.final_matrix.get(i, j).is_infinite() {
        return None;
    }
    rec(cuts, hb.final_matrix.cols(), i, j, cuts.len())
}

fn rec(cuts: &[Vec<u32>], n_cols: usize, i: usize, j: usize, h: usize) -> Option<BstNode> {
    if i == j {
        return Some(BstNode::Leaf(i));
    }
    debug_assert!(h > 0);
    let k = cuts[h - 1][i * n_cols + j];
    if k == partree_monge::UNTRUSTED {
        return None;
    }
    let k = k as usize;
    Some(BstNode::Key {
        key: k - 1,
        left: Box::new(rec(cuts, n_cols, i, k - 1, h - 1)?),
        right: Box::new(rec(cuts, n_cols, k, j, h - 1)?),
    })
}

/// Smallest height that can hold `n` keys: `⌈log₂(n + 1)⌉`.
pub fn min_feasible_height(n: usize) -> u32 {
    (usize::BITS - n.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knuth::obst_knuth;
    use partree_monge::concave::is_concave;

    #[test]
    fn matrices_stay_concave() {
        let inst = ObstInstance::random(12, 40, 1);
        for h in 1..=4 {
            let hb = obst_height_bounded(&inst, h, false, &CostTracer::disabled());
            assert!(is_concave(&hb.final_matrix, 1e-9), "E_{h}");
        }
    }

    #[test]
    fn unrestricted_height_matches_knuth() {
        for seed in 0..10 {
            let inst = ObstInstance::random(14, 60, seed);
            let hb = obst_height_bounded(&inst, 14, false, &CostTracer::disabled());
            let opt = obst_knuth(&inst);
            assert_eq!(hb.final_matrix.get(0, 14), opt.cost(), "seed={seed}");
        }
    }

    #[test]
    fn band_structure_height_h_holds_up_to_2h_minus_1_keys() {
        let inst = ObstInstance::random(10, 10, 2);
        let hb = obst_height_bounded(&inst, 2, false, &CostTracer::disabled());
        for i in 0..=10usize {
            for j in i..=10usize {
                let finite = hb.final_matrix.get(i, j).is_finite();
                assert_eq!(finite, j - i <= 3, "E_2[{i},{j}]"); // 2²−1 = 3 keys
            }
        }
    }

    #[test]
    fn height_restriction_costs_something_on_skewed_input() {
        let mut inst = ObstInstance::random(15, 5, 3);
        inst.q[0] = 10_000.0; // wants the first key at the root, deep chain elsewhere
        let tight = obst_height_bounded(
            &inst,
            min_feasible_height(15),
            false,
            &CostTracer::disabled(),
        );
        let free = obst_height_bounded(&inst, 15, false, &CostTracer::disabled());
        assert!(tight.final_matrix.get(0, 15) >= free.final_matrix.get(0, 15));
    }

    #[test]
    fn reconstruction_is_exact_and_height_bounded() {
        for seed in 0..10 {
            let inst = ObstInstance::random(13, 30, seed);
            let h = 5u32;
            let hb = obst_height_bounded(&inst, h, true, &CostTracer::disabled());
            let tree = reconstruct(&hb, 0, 13).expect("2⁵−1 ≥ 13 keys");
            tree.validate(13).unwrap();
            assert!(tree.height() <= h);
            assert_eq!(
                tree.weighted_path_length(&inst),
                hb.final_matrix.get(0, 13),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn infeasible_reconstruction_returns_none() {
        let inst = ObstInstance::random(9, 10, 0);
        let hb = obst_height_bounded(&inst, 2, true, &CostTracer::disabled());
        assert!(reconstruct(&hb, 0, 9).is_none());
    }

    #[test]
    fn min_feasible_height_values() {
        assert_eq!(min_feasible_height(0), 1);
        assert_eq!(min_feasible_height(1), 1);
        assert_eq!(min_feasible_height(3), 2);
        assert_eq!(min_feasible_height(4), 3);
        assert_eq!(min_feasible_height(7), 3);
        assert_eq!(min_feasible_height(8), 4);
    }
}
