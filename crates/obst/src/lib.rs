//! # partree-obst
//!
//! Optimal and near-optimal binary search trees — Section 6 of the
//! paper.
//!
//! Given keys `A_1 < … < A_n` with access frequencies `q_i` and gap
//! frequencies `p_0 … p_n` (the probability of searching between `A_i`
//! and `A_{i+1}`), find the BST minimizing the weighted path length
//! `P(T) = Σ q_i (b_i + 1) + Σ p_i a_i` (Knuth's classic formulation).
//!
//! * [`model`] — instances, BST values, exact cost evaluation;
//! * [`naive`] — the `O(n³)` dynamic program (correctness oracle);
//! * [`knuth`] — Knuth's `O(n²)` root-monotonicity speedup (the best
//!   sequential algorithm; the paper's stated comparison point);
//! * [`height_bounded`] — optimal BSTs of bounded height by concave
//!   matrix squaring, the parallel workhorse;
//! * [`collapse`] — the run-collapsing preprocessing (small-frequency
//!   runs merge into one gap; Güttler–Mehlhorn–Schneider's depth bound,
//!   Lemma 6.1, then caps the height at `O(log(1/ε))`);
//! * [`approx`] — the assembled Theorem 6.1 pipeline: collapse →
//!   height-bounded concave DP → reconstruct → expand with balanced
//!   subtrees; within `ε` of optimal (Lemma 6.2).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// Index-based loops over multiple parallel arrays are the idiom of
// matrix/PRAM code; iterator rewrites obscure the index arithmetic the
// correctness arguments are phrased in.
#![allow(clippy::needless_range_loop)]

pub mod approx;
pub mod collapse;
pub mod height_bounded;
pub mod knuth;
pub mod model;
pub mod naive;

pub use approx::approx_optimal_bst;
pub use model::{BstNode, ObstInstance};
