//! Instances and search-tree values for the OBST problem.

use partree_core::{Cost, Error, Result};

/// An OBST instance: `n` key frequencies `q[0..n]` (the paper's
/// `q_1 … q_n`) and `n + 1` gap frequencies `p[0..=n]` (the paper's
/// `p_0 … p_n`).
#[derive(Debug, Clone)]
pub struct ObstInstance {
    /// Key access frequencies (`q[i]` is the paper's `q_{i+1}`).
    pub q: Vec<f64>,
    /// Gap frequencies (`p[i]` = probability of a miss between `A_i`
    /// and `A_{i+1}`).
    pub p: Vec<f64>,
}

impl ObstInstance {
    /// Builds and validates an instance.
    pub fn new(q: Vec<f64>, p: Vec<f64>) -> Result<ObstInstance> {
        if p.len() != q.len() + 1 {
            return Err(Error::invalid(format!(
                "need n+1 gap frequencies for n keys (got {} keys, {} gaps)",
                q.len(),
                p.len()
            )));
        }
        if q.iter().chain(&p).any(|x| !x.is_finite() || *x < 0.0) {
            return Err(Error::invalid(
                "frequencies must be finite and non-negative",
            ));
        }
        Ok(ObstInstance { q, p })
    }

    /// Number of keys.
    pub fn n(&self) -> usize {
        self.q.len()
    }

    /// Total weight `Σ q + Σ p`.
    pub fn total(&self) -> f64 {
        self.q.iter().sum::<f64>() + self.p.iter().sum::<f64>()
    }

    /// Subtree weight `w(i, j) = p_i + q_{i+1} + p_{i+1} + … + q_j + p_j`
    /// (paper boundary convention, `0 ≤ i ≤ j ≤ n`).
    pub fn weight(&self, i: usize, j: usize) -> Cost {
        let mut w = self.p[i];
        for k in i + 1..=j {
            w += self.q[k - 1] + self.p[k];
        }
        Cost::new(w)
    }

    /// A deterministic random instance (integer frequencies, exact in
    /// `f64`).
    pub fn random(n: usize, max: u64, seed: u64) -> ObstInstance {
        let q = partree_core::gen::uniform_weights(n, max, seed);
        let p = partree_core::gen::uniform_weights(n + 1, max, seed ^ 0xabcd);
        ObstInstance { q, p }
    }
}

/// A binary search tree over keys `0 … n-1` and gaps `0 … n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BstNode {
    /// A miss leaf: the gap index.
    Leaf(usize),
    /// An internal node holding `key`, with everything smaller on the
    /// left and everything larger on the right.
    Key {
        /// Key index (0-based: the paper's `A_{key+1}`).
        key: usize,
        /// Left subtree (keys `< key`).
        left: Box<BstNode>,
        /// Right subtree (keys `> key`).
        right: Box<BstNode>,
    },
}

impl BstNode {
    /// Weighted path length `Σ q_i (depth_i + 1) + Σ p_i depth_i`.
    pub fn weighted_path_length(&self, inst: &ObstInstance) -> Cost {
        fn rec(node: &BstNode, inst: &ObstInstance, depth: f64) -> f64 {
            match node {
                BstNode::Leaf(g) => inst.p[*g] * depth,
                BstNode::Key { key, left, right } => {
                    inst.q[*key] * (depth + 1.0)
                        + rec(left, inst, depth + 1.0)
                        + rec(right, inst, depth + 1.0)
                }
            }
        }
        Cost::new(rec(self, inst, 0.0))
    }

    /// Checks the BST property: an inorder traversal must visit gap 0,
    /// key 0, gap 1, key 1, …, key n-1, gap n — exactly the search-tree
    /// ordering over the covered range.
    pub fn validate(&self, n: usize) -> Result<()> {
        let mut seq = Vec::new();
        fn inorder(node: &BstNode, seq: &mut Vec<(bool, usize)>) {
            match node {
                BstNode::Leaf(g) => seq.push((false, *g)),
                BstNode::Key { key, left, right } => {
                    inorder(left, seq);
                    seq.push((true, *key));
                    inorder(right, seq);
                }
            }
        }
        inorder(self, &mut seq);
        let mut expect = Vec::with_capacity(2 * n + 1);
        expect.push((false, 0));
        for k in 0..n {
            expect.push((true, k));
            expect.push((false, k + 1));
        }
        if seq == expect {
            Ok(())
        } else {
            Err(Error::Internal(
                "inorder traversal violates the BST property".into(),
            ))
        }
    }

    /// Height (a lone leaf has height 0).
    pub fn height(&self) -> u32 {
        match self {
            BstNode::Leaf(_) => 0,
            BstNode::Key { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }

    /// Depth of key node `key`, if present.
    pub fn key_depth(&self, key: usize) -> Option<u32> {
        match self {
            BstNode::Leaf(_) => None,
            BstNode::Key {
                key: k,
                left,
                right,
            } => {
                if *k == key {
                    Some(0)
                } else if key < *k {
                    left.key_depth(key).map(|d| d + 1)
                } else {
                    right.key_depth(key).map(|d| d + 1)
                }
            }
        }
    }
}

/// A perfectly balanced BST over keys `lo..hi` (gaps `lo..=hi`) — used
/// by the expansion step and as a quality baseline.
pub fn balanced_bst(lo: usize, hi: usize) -> BstNode {
    if lo == hi {
        return BstNode::Leaf(lo);
    }
    let mid = lo + (hi - lo) / 2; // root key index in lo..hi
    BstNode::Key {
        key: mid,
        left: Box::new(balanced_bst(lo, mid)),
        right: Box::new(balanced_bst(mid + 1, hi)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ObstInstance {
        // 2 keys, 3 gaps.
        ObstInstance::new(vec![3.0, 1.0], vec![1.0, 2.0, 1.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(ObstInstance::new(vec![1.0], vec![1.0]).is_err());
        assert!(ObstInstance::new(vec![1.0], vec![1.0, -1.0]).is_err());
        assert!(ObstInstance::new(vec![], vec![1.0]).is_ok());
    }

    #[test]
    fn weights() {
        let inst = tiny();
        assert_eq!(inst.weight(0, 0), Cost::new(1.0));
        assert_eq!(inst.weight(0, 2), Cost::new(8.0));
        assert_eq!(inst.weight(1, 2), Cost::new(4.0));
        assert_eq!(inst.total(), 8.0);
    }

    #[test]
    fn wpl_hand_computed() {
        let inst = tiny();
        // Tree: root = key 0, right subtree root = key 1.
        let t = BstNode::Key {
            key: 0,
            left: Box::new(BstNode::Leaf(0)),
            right: Box::new(BstNode::Key {
                key: 1,
                left: Box::new(BstNode::Leaf(1)),
                right: Box::new(BstNode::Leaf(2)),
            }),
        };
        t.validate(2).unwrap();
        // q0·1 + q1·2 + p0·1 + p1·2 + p2·2 = 3 + 2 + 1 + 4 + 2 = 12.
        assert_eq!(t.weighted_path_length(&inst), Cost::new(12.0));
        assert_eq!(t.height(), 2);
        assert_eq!(t.key_depth(0), Some(0));
        assert_eq!(t.key_depth(1), Some(1));
    }

    #[test]
    fn validate_rejects_wrong_order() {
        let bad = BstNode::Key {
            key: 1,
            left: Box::new(BstNode::Leaf(0)),
            right: Box::new(BstNode::Key {
                key: 0,
                left: Box::new(BstNode::Leaf(1)),
                right: Box::new(BstNode::Leaf(2)),
            }),
        };
        assert!(bad.validate(2).is_err());
    }

    #[test]
    fn balanced_bst_shape() {
        let t = balanced_bst(0, 7); // 7 keys
        t.validate(7).unwrap();
        assert_eq!(t.height(), 3);
        let t1 = balanced_bst(0, 1);
        t1.validate(1).unwrap();
        assert_eq!(t1.height(), 1);
        assert_eq!(balanced_bst(3, 3), BstNode::Leaf(3));
    }
}
