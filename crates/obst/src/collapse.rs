//! Run-collapsing of small frequencies (Theorem 6.1, steps 1–2).
//!
//! With `δ = ε / (2 n log n)`, a frequency is *small* if it is below
//! `δ·W` (we work with unnormalized weights of total `W`). A *run* is a
//! maximal sublist starting and ending with a gap (`p`) value in which
//! every `p` and `q` is small; each run collapses to a single gap whose
//! weight is the run's sum (still below `ε·W`). The collapsed instance
//! is what the height-bounded DP solves: by the Güttler–Mehlhorn–
//! Schneider bound (Lemma 6.1) its optimal tree fits in height
//! `O(log(1/δ))`, because every subtree of the collapsed instance
//! weighs at least `δ·W` (any lighter material was collapsed away).

use crate::model::{BstNode, ObstInstance};

/// A collapsed instance plus the bookkeeping to expand solutions back.
pub struct Collapsed {
    /// The reduced instance.
    pub inst: ObstInstance,
    /// For each collapsed gap index `g`, the original boundary range
    /// `(lo, hi)` it covers: original gaps `lo..=hi` and keys
    /// `lo+1..=hi` (1-based key boundaries) were merged. Un-collapsed
    /// gaps have `lo == hi`.
    pub gap_ranges: Vec<(usize, usize)>,
    /// For each collapsed key index, the original key index.
    pub key_map: Vec<usize>,
}

/// Collapses maximal small runs. `threshold` is the absolute weight
/// below which a frequency is small.
pub fn collapse_runs(inst: &ObstInstance, threshold: f64) -> Collapsed {
    let n = inst.n();
    let small_p = |i: usize| inst.p[i] < threshold;
    let small_q = |k: usize| inst.q[k] < threshold;

    let mut new_q = Vec::new();
    let mut new_p = Vec::new();
    let mut gap_ranges = Vec::new();
    let mut key_map = Vec::new();

    let mut g = 0usize; // current original gap boundary
    while g <= n {
        if small_p(g) {
            // Extend the run: gaps g..=h with all interior q small.
            let mut h = g;
            let mut sum = inst.p[g];
            while h < n && small_q(h) && small_p(h + 1) {
                sum += inst.q[h] + inst.p[h + 1];
                h += 1;
            }
            new_p.push(sum);
            gap_ranges.push((g, h));
            g = h + 1;
        } else {
            new_p.push(inst.p[g]);
            gap_ranges.push((g, g));
            g += 1;
        }
        // The key after this gap (if any) survives.
        if g <= n {
            // Key between original gaps g-1… careful: after emitting the
            // gap ending at boundary h (original), the next surviving
            // key is the one between gap h and gap h+1, i.e. original
            // key index h (0-based).
            let last_hi = gap_ranges.last().expect("just pushed").1;
            if last_hi < n {
                new_q.push(inst.q[last_hi]);
                key_map.push(last_hi);
            } else {
                break;
            }
        }
    }

    let inst = ObstInstance::new(new_q, new_p).expect("collapse preserves the n/n+1 invariant");
    Collapsed {
        inst,
        gap_ranges,
        key_map,
    }
}

impl Collapsed {
    /// Expands a BST over the collapsed instance into one over the
    /// original: every collapsed gap leaf becomes a balanced BST over
    /// the keys and gaps it swallowed; surviving keys map back.
    pub fn expand(&self, tree: &BstNode) -> BstNode {
        match tree {
            BstNode::Leaf(g) => {
                let (lo, hi) = self.gap_ranges[*g];
                // Balanced tree over original keys lo..hi (0-based key
                // indices lo..hi — i.e. boundaries), gaps lo..=hi.
                balanced_over(lo, hi)
            }
            BstNode::Key { key, left, right } => BstNode::Key {
                key: self.key_map[*key],
                left: Box::new(self.expand(left)),
                right: Box::new(self.expand(right)),
            },
        }
    }
}

/// Balanced BST over original keys `lo..hi`, gaps `lo..=hi`.
fn balanced_over(lo: usize, hi: usize) -> BstNode {
    if lo == hi {
        return BstNode::Leaf(lo);
    }
    let mid = lo + (hi - lo) / 2;
    BstNode::Key {
        key: mid,
        left: Box::new(balanced_over(lo, mid)),
        right: Box::new(balanced_over(mid + 1, hi)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knuth::obst_knuth;

    #[test]
    fn no_small_frequencies_is_identity() {
        let inst = ObstInstance::random(8, 100, 1);
        let c = collapse_runs(&inst, 0.5); // everything ≥ 1
        assert_eq!(c.inst.n(), 8);
        assert_eq!(c.inst.q, inst.q);
        assert_eq!(c.inst.p, inst.p);
        assert!(c.gap_ranges.iter().all(|&(a, b)| a == b));
        assert_eq!(c.key_map, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn middle_run_collapses() {
        // Keys: big, tiny, tiny, big; gaps: big tiny tiny tiny big.
        let inst = ObstInstance::new(
            vec![100.0, 0.1, 0.2, 100.0],
            vec![50.0, 0.1, 0.1, 0.1, 50.0],
        )
        .unwrap();
        let c = collapse_runs(&inst, 1.0);
        // Gaps 1..=3 and keys 1,2 merge: survivors q = [100, 100],
        // p = [50, 0.6, 50].
        assert_eq!(c.inst.q, vec![100.0, 100.0]);
        assert_eq!(c.inst.p.len(), 3);
        assert!((c.inst.p[1] - 0.6).abs() < 1e-12);
        assert_eq!(c.gap_ranges, vec![(0, 0), (1, 3), (4, 4)]);
        assert_eq!(c.key_map, vec![0, 3]);
        // Totals preserved.
        assert!((c.inst.total() - inst.total()).abs() < 1e-9);
    }

    #[test]
    fn isolated_small_q_survives() {
        // A small key between big gaps is NOT collapsed (runs must start
        // and end with a p value).
        let inst = ObstInstance::new(vec![0.1], vec![10.0, 10.0]).unwrap();
        let c = collapse_runs(&inst, 1.0);
        assert_eq!(c.inst.n(), 1);
        assert_eq!(c.inst.q, vec![0.1]);
    }

    #[test]
    fn boundary_runs_collapse() {
        let inst = ObstInstance::new(vec![0.1, 100.0, 0.1], vec![0.1, 0.1, 50.0, 0.1]).unwrap();
        let c = collapse_runs(&inst, 1.0);
        // The leading run (p₀, q₀, p₁) collapses and removes key 0; the
        // trailing small gap p₃ is a singleton run; key 2 survives even
        // though it is small — runs must start AND end with a p value.
        assert_eq!(c.inst.n(), 2);
        assert_eq!(c.key_map, vec![1, 2]);
        assert_eq!(c.gap_ranges, vec![(0, 1), (2, 2), (3, 3)]);
        assert_eq!(c.inst.q, vec![100.0, 0.1]);
        assert!((c.inst.total() - inst.total()).abs() < 1e-9);
    }

    #[test]
    fn everything_small_collapses_to_single_gap() {
        let inst = ObstInstance::new(vec![0.1, 0.1], vec![0.1, 0.1, 0.1]).unwrap();
        let c = collapse_runs(&inst, 1.0);
        assert_eq!(c.inst.n(), 0);
        assert_eq!(c.gap_ranges, vec![(0, 2)]);
    }

    #[test]
    fn expansion_preserves_validity_and_counts() {
        let inst = ObstInstance::new(
            vec![100.0, 0.1, 0.2, 100.0, 0.3],
            vec![50.0, 0.1, 0.1, 0.1, 50.0, 0.2],
        )
        .unwrap();
        let c = collapse_runs(&inst, 1.0);
        let opt = obst_knuth(&c.inst).tree();
        let expanded = c.expand(&opt);
        expanded.validate(5).unwrap();
    }
}
