//! Knuth's `O(n²)` OBST algorithm.
//!
//! "The sequential version … was first studied by Knuth, who used
//! monotonicity to give an `O(n²)` time algorithm" — the same quadrangle
//! condition the paper's concave matrices exploit restricts the optimal
//! root to the window `root[i][j-1] ≤ root[i][j] ≤ root[i+1][j]`, which
//! telescopes each diagonal's work to `O(n)`. This is the sequential
//! baseline Theorem 6.1 is measured against.

use crate::model::ObstInstance;
use crate::naive::{dp, DpTables};

/// Runs the quadratic DP with Knuth's monotone-root window.
pub fn obst_knuth(inst: &ObstInstance) -> DpTables {
    dp(inst, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::obst_naive;

    #[test]
    fn knuth_matches_naive_everywhere() {
        for seed in 0..20 {
            let inst = ObstInstance::random(18, 100, seed);
            let fast = obst_knuth(&inst);
            let slow = obst_naive(&inst);
            assert_eq!(fast.cost(), slow.cost(), "seed={seed}");
            let tree = fast.tree();
            tree.validate(18).unwrap();
            assert_eq!(tree.weighted_path_length(&inst), fast.cost(), "seed={seed}");
        }
    }

    #[test]
    fn knuth_matches_naive_on_skewed_instances() {
        // Heavily skewed: one enormous key frequency.
        let mut inst = ObstInstance::random(15, 10, 3);
        inst.q[7] = 10_000.0;
        assert_eq!(obst_knuth(&inst).cost(), obst_naive(&inst).cost());
        // Heavy boundary gaps.
        let mut inst = ObstInstance::random(15, 10, 4);
        inst.p[0] = 5_000.0;
        inst.p[15] = 5_000.0;
        assert_eq!(obst_knuth(&inst).cost(), obst_naive(&inst).cost());
    }

    #[test]
    fn root_monotonicity_holds() {
        let inst = ObstInstance::random(16, 100, 9);
        let t = obst_knuth(&inst);
        let n = 16;
        let idx = |i: usize, j: usize| i * (n + 1) + j;
        for d in 2..=n {
            for i in 0..=n - d {
                let j = i + d;
                assert!(t.root[idx(i, j - 1)] <= t.root[idx(i, j)]);
                assert!(t.root[idx(i, j)] <= t.root[idx(i + 1, j)]);
            }
        }
    }
}
