//! The `O(n³)` OBST dynamic program — the parallelization of which (at
//! `n⁶` processors) is the paper's stated strawman. Here it serves as
//! the correctness oracle.

use crate::model::{BstNode, ObstInstance};
use partree_core::Cost;

/// DP result: cost table and root witnesses.
pub struct DpTables {
    /// `e[i][j]`: optimal cost over keys `i+1..=j`, gaps `i..=j`.
    pub e: Vec<Cost>,
    /// Optimal root key per `(i, j)`, `i < j` (1-based boundary `k`,
    /// meaning key index `k-1`).
    pub root: Vec<u32>,
    /// Number of keys.
    pub n: usize,
}

impl DpTables {
    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * (self.n + 1) + j
    }

    /// Optimal total cost.
    pub fn cost(&self) -> Cost {
        self.e[self.idx(0, self.n)]
    }

    /// Reconstructs the optimal tree.
    pub fn tree(&self) -> BstNode {
        self.build(0, self.n)
    }

    fn build(&self, i: usize, j: usize) -> BstNode {
        if i == j {
            return BstNode::Leaf(i);
        }
        let k = self.root[self.idx(i, j)] as usize;
        BstNode::Key {
            key: k - 1,
            left: Box::new(self.build(i, k - 1)),
            right: Box::new(self.build(k, j)),
        }
    }
}

/// Runs the cubic DP (no monotonicity window).
pub fn obst_naive(inst: &ObstInstance) -> DpTables {
    dp(inst, false)
}

pub(crate) fn dp(inst: &ObstInstance, knuth_window: bool) -> DpTables {
    let n = inst.n();
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    let mut e = vec![Cost::INFINITY; (n + 1) * (n + 1)];
    let mut root = vec![0u32; (n + 1) * (n + 1)];
    // Prefix sums for w(i, j).
    let mut pref = vec![0.0f64; n + 1];
    let mut acc = inst.p[0];
    pref[0] = acc;
    for k in 1..=n {
        acc += inst.q[k - 1] + inst.p[k];
        pref[k] = acc;
    }
    let w = |i: usize, j: usize| Cost::new(pref[j] - pref[i] + inst.p[i]);

    for i in 0..=n {
        e[idx(i, i)] = Cost::ZERO;
    }
    for d in 1..=n {
        for i in 0..=n - d {
            let j = i + d;
            let (klo, khi) = if knuth_window && d > 1 {
                (root[idx(i, j - 1)] as usize, root[idx(i + 1, j)] as usize)
            } else {
                (i + 1, j)
            };
            let mut best = Cost::INFINITY;
            let mut arg = i + 1;
            for k in klo..=khi.min(j).max(klo) {
                let cand = e[idx(i, k - 1)] + e[idx(k, j)];
                if cand < best {
                    best = cand;
                    arg = k;
                }
            }
            e[idx(i, j)] = best + w(i, j);
            root[idx(i, j)] = arg as u32;
        }
    }
    DpTables { e, root, n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clrs_example() {
        // CLRS 3rd ed., §15.5 (scaled ×100 to stay integral):
        // key probs .15 .10 .05 .10 .20, dummy probs .05 .10 .05 .05
        // .05 .10 — CLRS's expected cost is 2.75 counting every node at
        // depth+1; the paper's P(T) charges leaves at their depth, i.e.
        // 2.75 − Σ dummies = 2.35 (×100 = 235). Same optimal tree.
        let inst = ObstInstance::new(
            vec![15.0, 10.0, 5.0, 10.0, 20.0],
            vec![5.0, 10.0, 5.0, 5.0, 5.0, 10.0],
        )
        .unwrap();
        let t = obst_naive(&inst);
        assert_eq!(t.cost(), Cost::new(235.0));
        let tree = t.tree();
        tree.validate(5).unwrap();
        assert_eq!(tree.weighted_path_length(&inst), Cost::new(235.0));
        // CLRS's optimal root is key 2 (1-based: k₂, our key index 1).
        match &tree {
            BstNode::Key { key, .. } => assert_eq!(*key, 1),
            _ => panic!("root must be a key"),
        }
    }

    #[test]
    fn zero_keys() {
        let inst = ObstInstance::new(vec![], vec![7.0]).unwrap();
        let t = obst_naive(&inst);
        assert_eq!(t.cost(), Cost::ZERO);
        assert_eq!(t.tree(), BstNode::Leaf(0));
    }

    #[test]
    fn single_key() {
        let inst = ObstInstance::new(vec![5.0], vec![1.0, 2.0]).unwrap();
        let t = obst_naive(&inst);
        // Root key 0: q·1 + p0·1 + p1·1 = 5+1+2 = 8.
        assert_eq!(t.cost(), Cost::new(8.0));
    }

    #[test]
    fn reconstruction_cost_matches_table() {
        for seed in 0..10 {
            let inst = ObstInstance::random(12, 50, seed);
            let t = obst_naive(&inst);
            let tree = t.tree();
            tree.validate(12).unwrap();
            assert_eq!(tree.weighted_path_length(&inst), t.cost(), "seed={seed}");
        }
    }

    #[test]
    fn optimal_beats_balanced() {
        for seed in 0..10 {
            let inst = ObstInstance::random(20, 100, seed);
            let opt = obst_naive(&inst).cost();
            let bal = crate::model::balanced_bst(0, 20).weighted_path_length(&inst);
            assert!(opt <= bal, "seed={seed}");
        }
    }
}
