//! Property tests: OBST algorithm consensus and the ε-guarantee on
//! arbitrary instances.

use partree_obst::approx::approx_optimal_bst;
use partree_obst::collapse::collapse_runs;
use partree_obst::height_bounded::{min_feasible_height, obst_height_bounded, reconstruct};
use partree_obst::knuth::obst_knuth;
use partree_obst::naive::obst_naive;
use partree_obst::ObstInstance;
use partree_pram::CostTracer;
use proptest::prelude::*;

fn instance(q: &[u32], p: &[u32]) -> ObstInstance {
    ObstInstance::new(
        q.iter().map(|&x| f64::from(x)).collect(),
        p.iter().map(|&x| f64::from(x)).collect(),
    )
    .expect("sizes matched by strategy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Knuth's window never changes the answer (quadrangle/monotonicity
    /// correctness) and reconstruction matches the table cost.
    #[test]
    fn knuth_equals_naive(n in 1usize..18, seed in 0u64..10_000) {
        let inst = ObstInstance::random(n, 100, seed);
        let fast = obst_knuth(&inst);
        let slow = obst_naive(&inst);
        prop_assert_eq!(fast.cost(), slow.cost());
        let t = fast.tree();
        t.validate(n).unwrap();
        prop_assert_eq!(t.weighted_path_length(&inst), fast.cost());
    }

    /// Height-bounded reconstruction is exact and within its bound for
    /// every feasible height.
    #[test]
    fn height_bounded_reconstruction(n in 1usize..14, extra in 0u32..3, seed in 0u64..10_000) {
        let inst = ObstInstance::random(n, 50, seed);
        let h = min_feasible_height(n) + extra;
        let hb = obst_height_bounded(&inst, h, true, &CostTracer::disabled());
        let t = reconstruct(&hb, 0, n).expect("height is feasible");
        t.validate(n).unwrap();
        prop_assert!(t.height() <= h);
        prop_assert_eq!(t.weighted_path_length(&inst), hb.final_matrix.get(0, n));
        // More height never costs more.
        let hb2 = obst_height_bounded(&inst, h + 1, false, &CostTracer::disabled());
        prop_assert!(hb2.final_matrix.get(0, n) <= hb.final_matrix.get(0, n));
    }

    /// The ε-guarantee holds on arbitrary instances (with zero
    /// frequencies allowed).
    #[test]
    fn approximation_within_eps(
        q in prop::collection::vec(0u32..300, 1..20),
        pseed in 0u64..10_000,
        eps_inv in 2u32..60,
    ) {
        let n = q.len();
        let p: Vec<u32> = {
            use rand::Rng;
            let mut r = partree_core::gen::rng(pseed);
            (0..=n).map(|_| r.gen_range(0..300)).collect()
        };
        let inst = instance(&q, &p);
        prop_assume!(inst.total() > 0.0);
        let eps = 1.0 / f64::from(eps_inv);
        let approx = approx_optimal_bst(&inst, eps).unwrap();
        approx.tree.validate(n).unwrap();
        let opt = obst_knuth(&inst).cost();
        let gap = approx.cost.value() - opt.value();
        prop_assert!(gap >= -1e-9);
        prop_assert!(gap <= eps * inst.total() + 1e-9, "gap {} vs bound {}", gap, eps * inst.total());
    }

    /// Collapsing preserves total weight and produces a structurally
    /// valid smaller instance.
    #[test]
    fn collapse_preserves_mass(
        q in prop::collection::vec(0u32..50, 1..25),
        pseed in 0u64..10_000,
        threshold in 1u32..40,
    ) {
        let n = q.len();
        let p: Vec<u32> = {
            use rand::Rng;
            let mut r = partree_core::gen::rng(pseed);
            (0..=n).map(|_| r.gen_range(0..50)).collect()
        };
        let inst = instance(&q, &p);
        let c = collapse_runs(&inst, f64::from(threshold));
        prop_assert!(c.inst.n() <= n);
        prop_assert!((c.inst.total() - inst.total()).abs() < 1e-6);
        prop_assert_eq!(c.inst.p.len(), c.inst.n() + 1);
        prop_assert_eq!(c.gap_ranges.len(), c.inst.n() + 1);
        prop_assert_eq!(c.key_map.len(), c.inst.n());
        // Gap ranges tile the original boundaries.
        let mut expect = 0usize;
        for &(lo, hi) in &c.gap_ranges {
            prop_assert_eq!(lo, expect);
            prop_assert!(hi >= lo);
            expect = hi + 1;
        }
        prop_assert_eq!(expect, n + 1);
    }
}
