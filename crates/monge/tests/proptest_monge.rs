//! Property tests: concave multiplication on the *banded* `+∞`-pattern
//! matrices the Huffman/OBST pipelines actually feed it — the regime
//! where naive Monge implementations break.

use partree_core::{gen, Cost};
use partree_monge::bottom_up::concave_mul_bottom_up;
use partree_monge::concave::is_concave;
use partree_monge::cut::concave_mul;
use partree_monge::dense::{min_plus_naive, Matrix};
use partree_pram::CostTracer;
use proptest::prelude::*;

/// A random concave matrix that is `+∞` outside the band
/// `lo ≤ j − i ≤ hi` (upper-triangular banded, like `A_h` and `E_h`).
fn banded_concave(n: usize, lo: usize, hi: usize, seed: u64) -> Matrix {
    let base = Matrix::from_rows(&gen::random_monge(n, n, seed));
    Matrix::from_fn(n, n, |i, j| {
        if j >= i && (j - i) >= lo && (j - i) <= hi {
            base.get(i, j)
        } else {
            Cost::INFINITY
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Banded inputs stay concave (extended arithmetic) and both fast
    /// products equal the naive one, untrusted entries exactly at `+∞`.
    #[test]
    fn banded_products_are_exact(
        n in 2usize..28,
        lo in 0usize..3,
        width in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let a = banded_concave(n, lo, lo + width, seed);
        let b = banded_concave(n, lo, lo + width, seed + 1);
        prop_assume!(is_concave(&a, 1e-9) && is_concave(&b, 1e-9));

        let slow = min_plus_naive(&a, &b, &CostTracer::disabled());
        let fast = concave_mul(&a, &b, &CostTracer::disabled());
        let bu = concave_mul_bottom_up(&a, &b, &CostTracer::disabled());
        prop_assert!(fast.values.approx_eq(&slow, 1e-9));
        prop_assert!(bu.values.approx_eq(&slow, 1e-9));
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    fast.cut_at(i, j).is_none(),
                    slow.get(i, j).is_infinite(),
                    "untrusted ⇔ +∞ at ({}, {})", i, j
                );
            }
        }
        // Closure under product (Lemma 5.1's engine).
        prop_assert!(is_concave(&fast.values, 1e-6));
    }

    /// Mixed shapes: a banded matrix times a dense concave matrix.
    #[test]
    fn banded_times_dense(
        n in 2usize..24,
        width in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let a = banded_concave(n, 1, width, seed);
        let b = Matrix::from_rows(&gen::random_monge(n, n, seed + 9));
        let slow = min_plus_naive(&a, &b, &CostTracer::disabled());
        let fast = concave_mul(&a, &b, &CostTracer::disabled());
        prop_assert!(fast.values.approx_eq(&slow, 1e-9));
    }

    /// Repeated squaring of a banded matrix (the `A_h` iteration shape)
    /// stays exact against naive squaring.
    #[test]
    fn repeated_squaring_matches_naive(
        n in 2usize..16,
        seed in 0u64..10_000,
    ) {
        let mut fast_m = banded_concave(n, 0, 2, seed);
        let mut slow_m = fast_m.clone();
        for _ in 0..3 {
            fast_m = concave_mul(&fast_m, &fast_m, &CostTracer::disabled()).values;
            slow_m = min_plus_naive(&slow_m, &slow_m, &CostTracer::disabled());
            prop_assert!(fast_m.approx_eq(&slow_m, 1e-9));
        }
    }
}
