//! Dense matrices over the `(min, +)` semiring, and the naive product.
//!
//! The paper's comparison point: "In the absence of the concavity
//! assumption, the best known algorithm for computing `AB` requires
//! `O(n³)` comparisons." [`min_plus_naive`] is that algorithm — it is
//! both the correctness oracle for the fast paths and the baseline of
//! experiment E1.

use partree_core::Cost;
use partree_pram::CostTracer;
use rayon::prelude::*;

/// A dense row-major matrix of [`Cost`] values.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Cost>,
}

impl Matrix {
    /// A `rows × cols` matrix filled with `fill`.
    pub fn filled(rows: usize, cols: usize, fill: Cost) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// A `rows × cols` matrix of `+∞` (the `(min,+)` zero matrix).
    pub fn infinite(rows: usize, cols: usize) -> Matrix {
        Matrix::filled(rows, cols, Cost::INFINITY)
    }

    /// The `(min,+)` multiplicative identity: `0` on the diagonal, `+∞`
    /// elsewhere.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::infinite(n, n);
        for i in 0..n {
            m.set(i, i, Cost::ZERO);
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` (rows evaluated in
    /// parallel).
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> Cost + Sync) -> Matrix {
        let mut data = vec![Cost::ZERO; rows * cols];
        data.par_chunks_mut(cols.max(1))
            .enumerate()
            .for_each(|(i, row)| {
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = f(i, j);
                }
            });
        Matrix { rows, cols, data }
    }

    /// Builds from nested `f64` rows (must be rectangular, non-empty rows
    /// allowed to be zero-length only if all are).
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut m = Matrix::filled(r, c, Cost::ZERO);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, Cost::new(v));
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Cost {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Cost) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Cost] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entrywise minimum of two equally-shaped matrices — the semiring's
    /// matrix *addition*.
    pub fn entrywise_min(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .par_iter()
            .zip(other.data.par_iter())
            .map(|(&a, &b)| a.min(b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Entrywise sum of two equally-shaped matrices (used for the
    /// paper's `A_{h-1} ⋆ A_{h-1} + S` update).
    pub fn entrywise_add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .par_iter()
            .zip(other.data.par_iter())
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `true` when every entry agrees within `tol` (with `∞ == ∞`).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols)
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| a.approx_eq(b, tol))
    }

    /// Per-row interval of finite entries: `(first, last)` column indices,
    /// or `None` for an all-`∞` row. The fast multiplication paths use
    /// these to confine searches to candidates that can matter.
    pub fn finite_row_spans(&self) -> Vec<Option<(usize, usize)>> {
        (0..self.rows)
            .into_par_iter()
            .map(|i| {
                let row = self.row(i);
                let first = row.iter().position(|c| c.is_finite())?;
                let last = row
                    .iter()
                    .rposition(|c| c.is_finite())
                    .expect("first exists");
                Some((first, last))
            })
            .collect()
    }

    /// Per-column interval of finite entries: `(first, last)` row indices,
    /// or `None` for an all-`∞` column.
    pub fn finite_col_spans(&self) -> Vec<Option<(usize, usize)>> {
        (0..self.cols)
            .into_par_iter()
            .map(|j| {
                let mut first = None;
                let mut last = None;
                for i in 0..self.rows {
                    if self.get(i, j).is_finite() {
                        if first.is_none() {
                            first = Some(i);
                        }
                        last = Some(i);
                    }
                }
                Some((first?, last.expect("first exists")))
            })
            .collect()
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(16) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(16) {
                write!(f, "{:>8} ", format!("{}", self.get(i, j)))?;
            }
            writeln!(f, "{}", if self.cols > 16 { " …" } else { "" })?;
        }
        if self.rows > 16 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// The naive `(min,+)` product: `O(p·q·r)` comparisons, rows in parallel.
///
/// `tracer` is bumped once per candidate comparison so experiment E1
/// can report exact work, and charged `⌈log₂(q+1)⌉` depth: one PRAM
/// round of `p·q·r` processors followed by a balanced min-reduction
/// over the `q` candidates of each entry.
pub fn min_plus_naive(a: &Matrix, b: &Matrix, tracer: &CostTracer) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let (p, q, r) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::infinite(p, r);
    out.data
        .par_chunks_mut(r.max(1))
        .enumerate()
        .for_each(|(i, out_row)| {
            let a_row = a.row(i);
            let mut local_ops = 0u64;
            for (j, slot) in out_row.iter_mut().enumerate() {
                let mut best = Cost::INFINITY;
                for k in 0..q {
                    let cand = a_row[k] + b.get(k, j);
                    local_ops += 1;
                    best = best.min(cand);
                }
                *slot = best;
            }
            tracer.add_work(local_ops);
        });
    tracer.add_depth((usize::BITS - q.leading_zeros()) as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = m(&[&[1.0, 5.0, 2.0], &[0.0, 3.0, 7.0], &[4.0, 4.0, 4.0]]);
        let id = Matrix::identity(3);
        assert_eq!(min_plus_naive(&a, &id, &CostTracer::disabled()), a);
        assert_eq!(min_plus_naive(&id, &a, &CostTracer::disabled()), a);
    }

    #[test]
    fn naive_product_small_known_values() {
        // C[i][j] = min_k A[i][k] + B[k][j].
        let a = m(&[&[1.0, 2.0], &[3.0, 0.0]]);
        let b = m(&[&[5.0, 1.0], &[0.0, 4.0]]);
        let c = min_plus_naive(&a, &b, &CostTracer::disabled());
        assert_eq!(c.get(0, 0), Cost::new(2.0)); // min(1+5, 2+0)
        assert_eq!(c.get(0, 1), Cost::new(2.0)); // min(1+1, 2+4)
        assert_eq!(c.get(1, 0), Cost::new(0.0)); // min(3+5, 0+0)
        assert_eq!(c.get(1, 1), Cost::new(4.0)); // min(3+1, 0+4)
    }

    #[test]
    fn infinity_rows_propagate() {
        let a = Matrix::infinite(2, 2);
        let b = Matrix::identity(2);
        let c = min_plus_naive(&a, &b, &CostTracer::disabled());
        assert!(c.data.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn tracer_counts_pqr() {
        let a = Matrix::filled(3, 4, Cost::ZERO);
        let b = Matrix::filled(4, 5, Cost::ZERO);
        let t = CostTracer::named("naive");
        let _ = min_plus_naive(&a, &b, &t);
        let wd = t.aggregate();
        assert_eq!(wd.work, 3 * 4 * 5);
        assert_eq!(wd.depth, 3); // ⌈log₂(4+1)⌉
    }

    #[test]
    fn entrywise_ops() {
        let a = m(&[&[1.0, 9.0]]);
        let b = m(&[&[4.0, 2.0]]);
        assert_eq!(a.entrywise_min(&b), m(&[&[1.0, 2.0]]));
        assert_eq!(a.entrywise_add(&b), m(&[&[5.0, 11.0]]));
    }

    #[test]
    fn finite_spans() {
        let mut a = Matrix::infinite(3, 4);
        a.set(0, 1, Cost::ZERO);
        a.set(0, 3, Cost::ZERO);
        a.set(2, 0, Cost::ZERO);
        let rows = a.finite_row_spans();
        assert_eq!(rows, vec![Some((1, 3)), None, Some((0, 0))]);
        let cols = a.finite_col_spans();
        assert_eq!(cols, vec![Some((2, 2)), Some((0, 0)), None, Some((0, 0))]);
    }

    #[test]
    fn from_fn_matches_manual() {
        let a = Matrix::from_fn(5, 7, |i, j| Cost::from((i * 10 + j) as u64));
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(a.get(i, j), Cost::from((i * 10 + j) as u64));
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::infinite(2, 3);
        let b = Matrix::infinite(2, 3);
        let _ = min_plus_naive(&a, &b, &CostTracer::disabled());
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = m(&[&[1.0]]);
        let b = m(&[&[1.0 + 1e-12]]);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&m(&[&[2.0]]), 1e-9));
        assert!(Matrix::infinite(1, 1).approx_eq(&Matrix::infinite(1, 1), 0.0));
    }
}
