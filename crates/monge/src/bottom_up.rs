//! The accelerated bottom-up concave multiplication of §4.2.
//!
//! The recursive algorithm of §4.1 halves the grid `min(log p, log r)`
//! times. Section 4.2 observes that once the subsampled problem is small
//! enough, the processors at hand can solve it *in one step* by brute
//! force, and the refinement can then proceed in exponentially growing
//! jumps: strides `n^{1/2}, n^{1/4}, …, n^{1/2^m}, …` — only
//! `⌈log log n⌉ + 1` rounds instead of `log n`.
//!
//! This module implements that schedule. Two implementation notes:
//!
//! * Refinement between known rows that are `g` apart fills `g - 1` new
//!   rows per gap. Filling them *in order inside the gap*, each seeded
//!   with the previous fill's cut as its lower bound (cut monotonicity
//!   again), keeps the per-column work telescoping to `O(q)` regardless
//!   of the jump size — matching the paper's `n²`-per-round bound.
//! * As in [`crate::cut`], `+∞` entries are handled by confining the
//!   search to finite spans and marking `+∞` results untrusted.

use crate::cut::{MinPlusProduct, UNTRUSTED};
use crate::dense::Matrix;
use partree_core::Cost;
use partree_pram::CostTracer;
use rayon::prelude::*;

/// Multiplies two concave matrices with the §4.2 stride schedule
/// (`⌈log log n⌉ + 1` refinement rounds). Same contract as
/// [`crate::cut::concave_mul`]; the tracer is charged one depth round
/// per phase — `2(⌈log log n⌉ + 1) + 1` rounds total.
pub fn concave_mul_bottom_up(a: &Matrix, b: &Matrix, tracer: &CostTracer) -> MinPlusProduct {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (p, q, r) = (a.rows(), a.cols(), b.cols());

    if p == 0 || r == 0 {
        return MinPlusProduct {
            values: Matrix::infinite(p, r),
            cut: vec![],
        };
    }
    if q == 0 {
        return MinPlusProduct {
            values: Matrix::infinite(p, r),
            cut: vec![UNTRUSTED; p * r],
        };
    }

    let a_span = a.finite_row_spans();
    let b_span = b.finite_col_spans();

    let mut cut = vec![UNTRUSTED; p * r];

    // Stride schedule: n, ⌊n^(1/2)⌋, ⌊n^(1/4)⌋, …, 1  (over max(p, r)).
    let n = p.max(r) as f64;
    let mut strides = vec![usize::MAX]; // "only row/col 0 known" marker
    let mut expo = 0.5f64;
    loop {
        let s = n.powf(expo).floor() as usize;
        if s <= 1 {
            strides.push(1);
            break;
        }
        strides.push(s);
        expo /= 2.0;
    }

    // Seed entry (0, 0) — one round.
    {
        let (c, ops) = solve_range(a, b, &a_span, &b_span, 0, 0, None, None);
        cut[0] = c;
        tracer.step(ops);
    }

    let shared = Cells(cut.as_mut_ptr());
    for w in strides.windows(2) {
        let (prev, curr) = (w[0], w[1]);
        let prev_rows: Vec<usize> = grid(p, prev);
        let curr_rows: Vec<usize> = grid(p, curr);
        let prev_cols: Vec<usize> = grid(r, prev);
        let curr_cols: Vec<usize> = grid(r, curr);

        // Phase 1 — new rows at the previous columns. Gaps between
        // consecutive previously-known rows are independent tasks.
        let ops: u64 = gaps(&prev_rows, &curr_rows)
            .into_par_iter()
            .map(|(lo_known, hi_known, fresh)| {
                let mut local = 0u64;
                for &j in &prev_cols {
                    let mut lo_cut = lo_known.and_then(|i0| shared.read(i0, j, r));
                    let hi_cut = hi_known.and_then(|i1| shared.read(i1, j, r));
                    for &i in &fresh {
                        let (c, ops) = solve_range(a, b, &a_span, &b_span, i, j, lo_cut, hi_cut);
                        // SAFETY: rows in `fresh` belong to exactly one gap.
                        unsafe { shared.write(i, j, r, c) };
                        if c != UNTRUSTED {
                            lo_cut = Some(c); // chain within the gap
                        }
                        local += 1 + ops;
                    }
                }
                local
            })
            .sum();
        tracer.step(ops);

        // Phase 2 — new columns at all current rows; chain within column
        // gaps of each row. Rows are independent tasks.
        let col_gaps = gaps(&prev_cols, &curr_cols);
        let ops: u64 = curr_rows
            .par_iter()
            .map(|&i| {
                let mut local = 0u64;
                for (lo_known, hi_known, fresh) in &col_gaps {
                    let mut lo_cut = lo_known.and_then(|j0| shared.read(i, j0, r));
                    let hi_cut = hi_known.and_then(|j1| shared.read(i, j1, r));
                    for &j in fresh {
                        let (c, ops) = solve_range(a, b, &a_span, &b_span, i, j, lo_cut, hi_cut);
                        // SAFETY: each task owns row `i` exclusively.
                        unsafe { shared.write(i, j, r, c) };
                        if c != UNTRUSTED {
                            lo_cut = Some(c);
                        }
                        local += 1 + ops;
                    }
                }
                local
            })
            .sum();
        tracer.step(ops);
    }

    let values = Matrix::from_fn(p, r, |i, j| match cut[i * r + j] {
        UNTRUSTED => Cost::INFINITY,
        k => a.get(i, k as usize) + b.get(k as usize, j),
    });
    MinPlusProduct { values, cut }
}

/// Indices `{0, s, 2s, …} ∩ [0, len)`; for the `usize::MAX` marker just
/// `{0}`.
fn grid(len: usize, stride: usize) -> Vec<usize> {
    if stride == usize::MAX {
        vec![0]
    } else {
        (0..len).step_by(stride.max(1)).collect()
    }
}

/// Splits the refinement `prev → curr` into gap tasks: each item is
/// `(known_below, known_above, fresh_indices_in_between)`.
fn gaps(prev: &[usize], curr: &[usize]) -> Vec<(Option<usize>, Option<usize>, Vec<usize>)> {
    // determinism: membership tests only; gap order follows `curr`.
    let prev_set: std::collections::HashSet<usize> = prev.iter().copied().collect();
    let mut out = Vec::new();
    let mut fresh = Vec::new();
    let mut below = Some(prev[0]);
    for &i in curr {
        if prev_set.contains(&i) {
            if !fresh.is_empty() {
                out.push((below, Some(i), std::mem::take(&mut fresh)));
            }
            below = Some(i);
        } else {
            fresh.push(i);
        }
    }
    if !fresh.is_empty() {
        out.push((below, None, fresh));
    }
    out
}

/// Bounded smallest-argmin search (same contract as `cut::solve_entry`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn solve_range(
    a: &Matrix,
    b: &Matrix,
    a_span: &[Option<(usize, usize)>],
    b_span: &[Option<(usize, usize)>],
    i: usize,
    j: usize,
    lo_neighbor: Option<u32>,
    hi_neighbor: Option<u32>,
) -> (u32, u64) {
    let Some((alo, ahi)) = a_span[i] else {
        return (UNTRUSTED, 0);
    };
    let Some((blo, bhi)) = b_span[j] else {
        return (UNTRUSTED, 0);
    };
    let mut lo = alo.max(blo);
    let mut hi = ahi.min(bhi);
    if let Some(l) = lo_neighbor {
        lo = lo.max(l as usize);
    }
    if let Some(h) = hi_neighbor {
        hi = hi.min(h as usize);
    }
    if lo > hi {
        return (UNTRUSTED, 0);
    }
    let a_row = a.row(i);
    let mut best = Cost::INFINITY;
    let mut arg = UNTRUSTED;
    let mut ops = 0u64;
    for k in lo..=hi {
        let cand = a_row[k] + b.get(k, j);
        ops += 1;
        if cand < best {
            best = cand;
            arg = k as u32;
        }
    }
    if best.is_infinite() {
        (UNTRUSTED, ops)
    } else {
        (arg, ops)
    }
}

struct Cells(*mut u32);

impl Cells {
    #[inline]
    fn read(&self, i: usize, j: usize, cols: usize) -> Option<u32> {
        // SAFETY: reads target previously-completed cells only.
        let v = unsafe { *self.ptr().add(i * cols + j) };
        (v != UNTRUSTED).then_some(v)
    }

    #[inline]
    unsafe fn write(&self, i: usize, j: usize, cols: usize, v: u32) {
        // SAFETY: forwarded contract — the caller guarantees exclusive
        // access to cell (i, j) and that it is in bounds.
        unsafe { *self.ptr().add(i * cols + j) = v };
    }

    #[inline]
    fn ptr(&self) -> *mut u32 {
        self.0
    }
}

// SAFETY: concurrent accesses are to disjoint cells (rows partitioned by
// gap in phase 1, by row in phase 2).
unsafe impl Sync for Cells {}
// SAFETY: same argument as Sync above; the pointer owns no thread-bound
// state.
unsafe impl Send for Cells {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::concave_mul;
    use crate::dense::min_plus_naive;
    use partree_core::gen;

    fn random_concave(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_rows(&gen::random_monge(rows, cols, seed))
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        for seed in 0..8 {
            let a = random_concave(19, 13, seed);
            let b = random_concave(13, 23, seed + 31);
            let fast = concave_mul_bottom_up(&a, &b, &CostTracer::disabled());
            let slow = min_plus_naive(&a, &b, &CostTracer::disabled());
            assert!(fast.values.approx_eq(&slow, 1e-9), "seed={seed}");
        }
    }

    #[test]
    fn matches_recursive_variant_including_cuts() {
        for seed in 0..5 {
            let a = random_concave(33, 21, seed);
            let b = random_concave(21, 27, seed + 5);
            let x = concave_mul_bottom_up(&a, &b, &CostTracer::disabled());
            let y = concave_mul(&a, &b, &CostTracer::disabled());
            assert!(x.values.approx_eq(&y.values, 1e-9), "seed={seed}");
            assert_eq!(x.cut, y.cut, "seed={seed}");
        }
    }

    #[test]
    fn handles_triangular_infinities() {
        let w: Vec<f64> = (1..=10).map(f64::from).collect();
        let pw = partree_core::cost::PrefixWeights::new(&w);
        let n = w.len();
        let s = Matrix::from_fn(n + 1, n + 1, |i, j| {
            if i < j {
                pw.sum(i, j)
            } else {
                Cost::INFINITY
            }
        });
        let fast = concave_mul_bottom_up(&s, &s, &CostTracer::disabled());
        let slow = min_plus_naive(&s, &s, &CostTracer::disabled());
        assert!(fast.values.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn rectangular_extremes() {
        for (p, q, r) in [(1, 4, 9), (9, 4, 1), (2, 2, 2), (64, 5, 3)] {
            let a = random_concave(p, q, 1);
            let b = random_concave(q, r, 2);
            let fast = concave_mul_bottom_up(&a, &b, &CostTracer::disabled());
            let slow = min_plus_naive(&a, &b, &CostTracer::disabled());
            assert!(fast.values.approx_eq(&slow, 1e-9), "({p},{q},{r})");
        }
    }

    #[test]
    fn work_stays_quadratic() {
        let n = 128;
        let a = random_concave(n, n, 3);
        let b = random_concave(n, n, 4);
        let c = CostTracer::named("bottom_up");
        let _ = concave_mul_bottom_up(&a, &b, &c);
        let wd = c.aggregate();
        let bound = 10 * (n * n) as u64;
        assert!(
            wd.work <= bound,
            "bottom-up used {} ops, bound {bound}",
            wd.work
        );
        // Depth: 1 seed round + 2 per stride window — O(log log n).
        assert!(wd.depth <= 11, "bottom-up depth {} on n={n}", wd.depth);
    }

    #[test]
    fn round_count_is_loglog() {
        // The stride schedule for n = 65536 must have ≤ ⌈log log n⌉ + 2
        // refinement rounds (16 → 4 → 2 → 1 exponent halvings).
        let n = 65536f64;
        let mut rounds = 0;
        let mut expo = 0.5;
        while n.powf(expo).floor() as usize > 1 {
            rounds += 1;
            expo /= 2.0;
        }
        assert!(rounds <= 5, "rounds = {rounds}");
    }
}
