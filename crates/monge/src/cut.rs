//! The paper's MULTIPLICATION ALGORITHM (§4.1): computing `Cut(A, B)`
//! by recursion on even rows/columns plus monotone interpolation.
//!
//! `Cut(A,B)[i][j]` is the smallest `k` minimizing `A[i][k] + B[k][j]`.
//! Concavity of `A` gives `Cut(A,B)[i][j] ≤ Cut(A,B)[i+1][j]`; concavity
//! of `B` gives `Cut(A,B)[i][j] ≤ Cut(A,B)[i][j+1]` — the *monotonicity
//! property*. The recursion of the paper (halve the rows of `A` and the
//! columns of `B`, recurse, then interpolate the missing rows/columns
//! inside the monotone bounds) is realized here iteratively as
//! stride-halving refinement: strides `2^t, 2^{t-1}, …, 1`, each level
//! interpolating the rows (then the columns) midway between known ones.
//! The two formulations perform the same comparisons; the iterative one
//! parallelizes cleanly with rayon (every new row/column is independent).
//!
//! ## `+∞` entries
//!
//! The paper's matrices carry `+∞` in structured positions (`S[i,j] = ∞`
//! for `i ≥ j`; `A_h[i,j] = ∞` when no height-`h` tree exists). An
//! all-`∞` row of the product has *no* meaningful argmin, and naive
//! tie-breaking there can destroy monotonicity for its neighbours. Two
//! measures keep the algorithm exact and within its work bound:
//!
//! * searches are confined to the *finite spans* — `k` ranges where
//!   `A[i][k]` and `B[k][j]` can both be finite (every matrix in this
//!   workspace has contiguous finite spans per row/column, which
//!   [`concave_mul`] requires and debug-asserts);
//! * entries whose minimum is `+∞` are marked [`UNTRUSTED`] and never
//!   used as interpolation bounds; a finite entry with an untrusted
//!   neighbour falls back to its span bounds.
//!
//! Monotonicity between *finite* entries is a theorem (proved in the
//! paper; re-proved as a property test here), so the bounds used are
//! always genuine.

use crate::dense::Matrix;
use partree_core::Cost;
use partree_pram::CostTracer;
use rayon::prelude::*;

/// Sentinel cut value for entries whose minimum is `+∞` (no finite
/// candidate `k` exists).
pub const UNTRUSTED: u32 = u32::MAX;

/// A `(min,+)` product together with its cut (witness) matrix.
pub struct MinPlusProduct {
    /// The product values `C = A ⋆ B`.
    pub values: Matrix,
    /// Row-major `rows×cols` cut matrix; `cut[i*cols+j]` is the smallest
    /// argmin `k`, or [`UNTRUSTED`] where `C[i][j] = +∞`.
    pub cut: Vec<u32>,
}

impl MinPlusProduct {
    /// The witness `k` for entry `(i, j)`, or `None` where the product
    /// is `+∞`.
    pub fn cut_at(&self, i: usize, j: usize) -> Option<usize> {
        let c = self.cut[i * self.values.cols() + j];
        (c != UNTRUSTED).then_some(c as usize)
    }
}

/// Multiplies two concave matrices over `(min,+)` using the paper's §4.1
/// algorithm: `O((p + q + r)·max(p,r)/min(p,r) + p·r)`-ish comparisons —
/// `O(n²)` for square inputs — instead of the naive `p·q·r`.
///
/// Requirements (debug-asserted): `a.cols() == b.rows()`; both matrices
/// concave; finite entries contiguous in every row of `a` and every
/// column of `b`.
///
/// ```
/// use partree_core::gen;
/// use partree_monge::cut::concave_mul;
/// use partree_monge::dense::{min_plus_naive, Matrix};
/// use partree_pram::CostTracer;
///
/// let a = Matrix::from_rows(&gen::random_monge(64, 64, 1));
/// let b = Matrix::from_rows(&gen::random_monge(64, 64, 2));
/// let tracer = CostTracer::named("concave_mul");
/// let fast = concave_mul(&a, &b, &tracer);
/// let wd = tracer.aggregate();
/// assert!(fast.values.approx_eq(&min_plus_naive(&a, &b, &CostTracer::disabled()), 1e-9));
/// assert!(wd.work < 3 * 64 * 64);          // ≈ n², not n³ comparisons
/// assert!(wd.depth <= 2 * 6 + 1);          // 2·log₂ n + 1 parallel rounds
/// ```
///
/// `tracer` records candidate evaluations (one per `A[i][k] + B[k][j]`
/// considered — the paper's work measure) and one depth round per
/// stride-level interpolation sweep: the seed entry plus two sweeps per
/// halving, `2⌈log₂ max(p,r)⌉ + 1` rounds total.
pub fn concave_mul(a: &Matrix, b: &Matrix, tracer: &CostTracer) -> MinPlusProduct {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (p, q, r) = (a.rows(), a.cols(), b.cols());

    if p == 0 || r == 0 {
        return MinPlusProduct {
            values: Matrix::infinite(p, r),
            cut: vec![],
        };
    }
    if q == 0 {
        return MinPlusProduct {
            values: Matrix::infinite(p, r),
            cut: vec![UNTRUSTED; p * r],
        };
    }

    let a_span = a.finite_row_spans();
    let b_span = b.finite_col_spans();
    debug_assert!(
        spans_contiguous_rows(a),
        "A must have contiguous finite rows"
    );
    debug_assert!(
        spans_contiguous_cols(b),
        "B must have contiguous finite columns"
    );

    let mut cut = vec![UNTRUSTED; p * r];

    // Coarsest stride: a power of two ≥ max(p, r), so the initial grid is
    // the single entry (0, 0).
    let mut s = (p.max(r)).next_power_of_two();

    // Seed entry (0, 0) — one round.
    {
        let (c, ops) = solve_entry(a, b, &a_span, &b_span, 0, 0, None, None);
        cut[0] = c;
        tracer.step(ops);
    }

    let shared = CutCells(cut.as_mut_ptr());
    while s > 1 {
        let half = s / 2;

        // Step A — interpolate the new rows (i ≡ half mod s) at the old
        // columns (j ≡ 0 mod s). Each new row only reads rows i ± half,
        // which belong to the old grid, so tasks write disjoint rows.
        let new_rows: Vec<usize> = (half..p).step_by(s).collect();
        let ops: u64 = new_rows
            .par_iter()
            .map(|&i| {
                let mut local = 0u64;
                for j in (0..r).step_by(s) {
                    let lo = shared.read(i - half, j, r);
                    let hi = if i + half < p {
                        shared.read(i + half, j, r)
                    } else {
                        None
                    };
                    let (c, ops) = solve_entry(a, b, &a_span, &b_span, i, j, lo, hi);
                    // SAFETY: row `i` is written only by this task; reads
                    // touch only rows of the old grid.
                    unsafe { shared.write(i, j, r, c) };
                    local += ops;
                }
                local
            })
            .sum();
        tracer.step(ops);

        // Step B — interpolate the new columns (j ≡ half mod s) at all
        // current rows (i ≡ 0 mod half). Bounds come from the same row's
        // columns j ± half, already computed; tasks own whole rows.
        let cur_rows: Vec<usize> = (0..p).step_by(half).collect();
        let ops: u64 = cur_rows
            .par_iter()
            .map(|&i| {
                let mut local = 0u64;
                for j in (half..r).step_by(s) {
                    let lo = shared.read(i, j - half, r);
                    let hi = if j + half < r {
                        shared.read(i, j + half, r)
                    } else {
                        None
                    };
                    let (c, ops) = solve_entry(a, b, &a_span, &b_span, i, j, lo, hi);
                    // SAFETY: each task owns row `i` exclusively here.
                    unsafe { shared.write(i, j, r, c) };
                    local += ops;
                }
                local
            })
            .sum();
        tracer.step(ops);

        s = half;
    }

    // Materialize the values from the witnesses — O(1) per entry, the
    // paper's "construct AB from Cut(A,B)" step.
    let values = Matrix::from_fn(p, r, |i, j| match cut[i * r + j] {
        UNTRUSTED => Cost::INFINITY,
        k => a.get(i, k as usize) + b.get(k as usize, j),
    });

    MinPlusProduct { values, cut }
}

/// Finds the smallest argmin for entry `(i, j)`, searching only inside
/// the intersection of the finite spans and the (optional) monotone
/// neighbour bounds. Returns the cut value and the number of candidate
/// evaluations performed.
#[inline]
#[allow(clippy::too_many_arguments)]
fn solve_entry(
    a: &Matrix,
    b: &Matrix,
    a_span: &[Option<(usize, usize)>],
    b_span: &[Option<(usize, usize)>],
    i: usize,
    j: usize,
    lo_neighbor: Option<u32>,
    hi_neighbor: Option<u32>,
) -> (u32, u64) {
    let Some((alo, ahi)) = a_span[i] else {
        return (UNTRUSTED, 0);
    };
    let Some((blo, bhi)) = b_span[j] else {
        return (UNTRUSTED, 0);
    };
    let mut lo = alo.max(blo);
    let mut hi = ahi.min(bhi);
    if let Some(l) = lo_neighbor {
        lo = lo.max(l as usize);
    }
    if let Some(h) = hi_neighbor {
        hi = hi.min(h as usize);
    }
    if lo > hi {
        return (UNTRUSTED, 0);
    }

    let a_row = a.row(i);
    let mut best = Cost::INFINITY;
    let mut arg = UNTRUSTED;
    let mut ops = 0u64;
    for k in lo..=hi {
        let cand = a_row[k] + b.get(k, j);
        ops += 1;
        if cand < best {
            best = cand;
            arg = k as u32;
        }
    }
    if best.is_infinite() {
        (UNTRUSTED, ops)
    } else {
        (arg, ops)
    }
}

/// Shared-cut-cell pointer for the provably disjoint interleaved writes
/// of the refinement loop.
struct CutCells(*mut u32);

impl CutCells {
    /// Reads a cut cell, mapping [`UNTRUSTED`] to `None`.
    #[inline]
    fn read(&self, i: usize, j: usize, cols: usize) -> Option<u32> {
        // SAFETY: reads target cells of the previous (coarser) grid,
        // which no task of the current step writes.
        let v = unsafe { *self.ptr().add(i * cols + j) };
        (v != UNTRUSTED).then_some(v)
    }

    /// Writes a cut cell. Caller must guarantee exclusive access to it.
    #[inline]
    unsafe fn write(&self, i: usize, j: usize, cols: usize, v: u32) {
        // SAFETY: forwarded contract — the caller guarantees exclusive
        // access to cell (i, j) and that it is in bounds.
        unsafe { *self.ptr().add(i * cols + j) = v };
    }

    #[inline]
    fn ptr(&self) -> *mut u32 {
        self.0
    }
}

// SAFETY: all concurrent accesses are to disjoint cells (see the SAFETY
// comments at the call sites).
unsafe impl Sync for CutCells {}
// SAFETY: same argument as Sync above; the pointer owns no thread-bound
// state.
unsafe impl Send for CutCells {}

/// Debug check: finite entries contiguous in each row.
fn spans_contiguous_rows(m: &Matrix) -> bool {
    (0..m.rows()).all(|i| {
        let row = m.row(i);
        let Some(first) = row.iter().position(|c| c.is_finite()) else {
            return true;
        };
        let last = row
            .iter()
            .rposition(|c| c.is_finite())
            .expect("first exists");
        row[first..=last].iter().all(|c| c.is_finite())
    })
}

/// Debug check: finite entries contiguous in each column.
fn spans_contiguous_cols(m: &Matrix) -> bool {
    (0..m.cols()).all(|j| {
        let mut state = 0u8; // 0 = before, 1 = inside, 2 = after
        for i in 0..m.rows() {
            match (state, m.get(i, j).is_finite()) {
                (0, true) => state = 1,
                (1, false) => state = 2,
                (2, true) => return false,
                _ => {}
            }
        }
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::min_plus_naive;
    use partree_core::gen;

    fn random_concave(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_rows(&gen::random_monge(rows, cols, seed))
    }

    /// Smallest-argmin witness matrix by brute force.
    fn cut_naive(a: &Matrix, b: &Matrix) -> Vec<u32> {
        let (p, q, r) = (a.rows(), a.cols(), b.cols());
        let mut out = vec![UNTRUSTED; p * r];
        for i in 0..p {
            for j in 0..r {
                let mut best = Cost::INFINITY;
                let mut arg = UNTRUSTED;
                for k in 0..q {
                    let cand = a.get(i, k) + b.get(k, j);
                    if cand < best {
                        best = cand;
                        arg = k as u32;
                    }
                }
                if !best.is_infinite() {
                    out[i * r + j] = arg;
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_random_concave_matrices() {
        for seed in 0..10 {
            let a = random_concave(13, 17, seed);
            let b = random_concave(17, 11, seed + 50);
            let fast = concave_mul(&a, &b, &CostTracer::disabled());
            let slow = min_plus_naive(&a, &b, &CostTracer::disabled());
            assert!(
                fast.values.approx_eq(&slow, 1e-9),
                "values differ, seed={seed}"
            );
            assert_eq!(fast.cut, cut_naive(&a, &b), "cuts differ, seed={seed}");
        }
    }

    #[test]
    fn matches_naive_on_rectangular_extremes() {
        for (p, q, r) in [(1, 5, 7), (7, 5, 1), (1, 1, 1), (2, 9, 2), (16, 3, 16)] {
            let a = random_concave(p, q, 7);
            let b = random_concave(q, r, 8);
            let fast = concave_mul(&a, &b, &CostTracer::disabled());
            let slow = min_plus_naive(&a, &b, &CostTracer::disabled());
            assert!(fast.values.approx_eq(&slow, 1e-9), "({p},{q},{r})");
        }
    }

    #[test]
    fn handles_upper_triangular_infinity_bands() {
        // The Huffman-style S matrix squared: finite only above the
        // diagonal within a band.
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let pw = partree_core::cost::PrefixWeights::new(&w);
        let n = w.len();
        let s = Matrix::from_fn(n + 1, n + 1, |i, j| {
            if i < j {
                pw.sum(i, j)
            } else {
                Cost::INFINITY
            }
        });
        let fast = concave_mul(&s, &s, &CostTracer::disabled());
        let slow = min_plus_naive(&s, &s, &CostTracer::disabled());
        assert!(fast.values.approx_eq(&slow, 1e-9));
        // Untrusted exactly where the product is ∞.
        for i in 0..=n {
            for j in 0..=n {
                assert_eq!(
                    fast.cut_at(i, j).is_none(),
                    slow.get(i, j).is_infinite(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn handles_narrow_band_matrices() {
        // Banded: finite only for 0 < j - i ≤ 2 (like A_1 in §5).
        let n = 9;
        let m = Matrix::from_fn(n, n, |i, j| {
            if j > i && j - i <= 2 {
                Cost::from((i + j) as u64)
            } else {
                Cost::INFINITY
            }
        });
        let fast = concave_mul(&m, &m, &CostTracer::disabled());
        let slow = min_plus_naive(&m, &m, &CostTracer::disabled());
        assert!(fast.values.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn all_infinite_inputs() {
        let a = Matrix::infinite(4, 4);
        let out = concave_mul(&a, &a, &CostTracer::disabled());
        assert!(out.values.approx_eq(&Matrix::infinite(4, 4), 0.0));
        assert!(out.cut.iter().all(|&c| c == UNTRUSTED));
    }

    #[test]
    fn empty_dimensions() {
        let a = Matrix::infinite(0, 5);
        let b = Matrix::infinite(5, 3);
        let out = concave_mul(&a, &b, &CostTracer::disabled());
        assert_eq!(out.values.rows(), 0);
        let a = Matrix::infinite(3, 0);
        let b = Matrix::infinite(0, 2);
        let out = concave_mul(&a, &b, &CostTracer::disabled());
        assert_eq!(out.values.rows(), 3);
        assert!(out.values.approx_eq(&Matrix::infinite(3, 2), 0.0));
    }

    #[test]
    fn work_is_quadratic_not_cubic() {
        // The headline claim of Theorem 4.1, checked on actual counts.
        let n = 128;
        let a = random_concave(n, n, 1);
        let b = random_concave(n, n, 2);
        let fast = CostTracer::named("fast");
        let _ = concave_mul(&a, &b, &fast);
        let slow = CostTracer::named("slow");
        let _ = min_plus_naive(&a, &b, &slow);
        assert_eq!(slow.aggregate().work, (n * n * n) as u64);
        // Generous constant: ≤ 8·n² + O(n log n) candidates.
        let bound = 8 * (n * n) as u64 + 64 * (n as u64) * 8;
        let got = fast.aggregate().work;
        assert!(got <= bound, "fast used {got} ops, bound {bound}");
    }

    #[test]
    fn depth_is_logarithmic() {
        // One seed round plus two interpolation sweeps per stride
        // halving: 2·log₂ n + 1 rounds exactly for power-of-two n.
        for n in [16usize, 64, 256] {
            let a = random_concave(n, n, 3);
            let b = random_concave(n, n, 4);
            let t = CostTracer::named("mul");
            let _ = concave_mul(&a, &b, &t);
            let lg = n.trailing_zeros() as u64;
            assert_eq!(t.aggregate().depth, 2 * lg + 1, "n={n}");
        }
    }

    #[test]
    fn cut_matrix_is_monotone() {
        for seed in 0..5 {
            let a = random_concave(20, 15, seed);
            let b = random_concave(15, 22, seed + 9);
            let out = concave_mul(&a, &b, &CostTracer::disabled());
            let r = out.values.cols();
            for i in 0..out.values.rows() {
                for j in 0..r - 1 {
                    let x = out.cut[i * r + j];
                    let y = out.cut[i * r + j + 1];
                    assert!(x <= y, "row monotonicity at ({i},{j})");
                }
            }
            for j in 0..r {
                for i in 0..out.values.rows() - 1 {
                    let x = out.cut[i * r + j];
                    let y = out.cut[(i + 1) * r + j];
                    assert!(x <= y, "column monotonicity at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn ties_break_to_smallest_k() {
        // A and B constant ⇒ every k ties; cut must be the smallest
        // admissible k (here 0).
        let a = Matrix::filled(3, 4, Cost::new(1.0));
        let b = Matrix::filled(4, 3, Cost::new(2.0));
        let out = concave_mul(&a, &b, &CostTracer::disabled());
        assert!(out.cut.iter().all(|&c| c == 0), "cut = {:?}", out.cut);
        assert!(out
            .values
            .approx_eq(&Matrix::filled(3, 3, Cost::new(3.0)), 0.0));
    }
}
