//! Repeated squaring of concave matrices, with witnesses.
//!
//! Section 5 computes the Huffman spine by squaring the concave matrix
//! `M'` (the spine digraph with a zero self-loop at vertex 0)
//! `⌈log n⌉` times: `(M')^{2^k}[0, n]` is then the optimal weighted path
//! length. Because every power of a concave matrix is again concave
//! (closure under `⋆`, see [`crate::concave`]), every squaring costs one
//! concave multiplication.
//!
//! [`PowerTrace`] keeps the cut (witness) matrix of every squaring so
//! the *path itself* — not just its weight — can be recovered: the cut
//! of level `ℓ` names the midpoint splitting a `2^ℓ`-step path into two
//! `2^{ℓ-1}`-step halves.

use crate::cut::{concave_mul, MinPlusProduct};
use crate::dense::Matrix;
use partree_pram::CostTracer;

/// The result of repeatedly squaring a matrix, with all intermediate
/// witnesses retained for path reconstruction.
pub struct PowerTrace {
    base: Matrix,
    /// `levels[ℓ]` is the product `M^{2^ℓ} ⋆ M^{2^ℓ} = M^{2^{ℓ+1}}`.
    levels: Vec<MinPlusProduct>,
}

/// Squares `m` (a square concave matrix) `squarings` times using concave
/// multiplication, retaining witnesses. The final matrix is
/// `m^{2^squarings}`.
pub fn power_trace(m: &Matrix, squarings: usize, tracer: &CostTracer) -> PowerTrace {
    assert_eq!(m.rows(), m.cols(), "power of a non-square matrix");
    let mut levels = Vec::with_capacity(squarings);
    let mut cur = m.clone();
    for _ in 0..squarings {
        let prod = concave_mul(&cur, &cur, tracer);
        cur = prod.values.clone();
        levels.push(prod);
    }
    PowerTrace {
        base: m.clone(),
        levels,
    }
}

impl PowerTrace {
    /// The matrix `m^{2^squarings}` (or `m` itself when `squarings = 0`).
    pub fn final_matrix(&self) -> &Matrix {
        self.levels.last().map_or(&self.base, |p| &p.values)
    }

    /// Number of squarings performed.
    pub fn squarings(&self) -> usize {
        self.levels.len()
    }

    /// Recovers a minimum-weight walk of length exactly `2^squarings`
    /// from `i` to `j` in the digraph of the base matrix, as the sequence
    /// of visited vertices (length `2^squarings + 1`, endpoints
    /// included). Returns `None` when no such walk exists (entry `+∞`).
    ///
    /// Self-loop steps are *not* collapsed here; see
    /// [`PowerTrace::reconstruct_simple_path`].
    pub fn reconstruct_walk(&self, i: usize, j: usize) -> Option<Vec<usize>> {
        if self.final_matrix().get(i, j).is_infinite() {
            return None;
        }
        let mut walk = Vec::with_capacity((1usize << self.levels.len()) + 1);
        walk.push(i);
        self.walk_rec(self.levels.len(), i, j, &mut walk)?;
        Some(walk)
    }

    /// Like [`PowerTrace::reconstruct_walk`] but with consecutive
    /// repeats (self-loop dwell steps) collapsed — the paper's "any path
    /// of length `k` or less from 0 to `j` in `M'` corresponds to a path
    /// of length exactly `k`" read in reverse.
    pub fn reconstruct_simple_path(&self, i: usize, j: usize) -> Option<Vec<usize>> {
        let walk = self.reconstruct_walk(i, j)?;
        let mut out: Vec<usize> = Vec::with_capacity(walk.len());
        for v in walk {
            if out.last() != Some(&v) {
                out.push(v);
            }
        }
        Some(out)
    }

    fn walk_rec(&self, level: usize, i: usize, j: usize, out: &mut Vec<usize>) -> Option<()> {
        if level == 0 {
            // A single edge of the base digraph.
            if self.base.get(i, j).is_infinite() {
                return None;
            }
            out.push(j);
            return Some(());
        }
        let prod = &self.levels[level - 1];
        let k = prod.cut_at(i, j)?;
        self.walk_rec(level - 1, i, k, out)?;
        self.walk_rec(level - 1, k, j, out)
    }
}

/// All-pairs minimum path weights of an arbitrary weighted digraph —
/// the §5 preliminary "if `M` is the matrix for a weighted digraph,
/// `min(M, I)^n` contains the solutions to the all-pairs minimum path
/// problem". General digraphs are not concave, so this uses the naive
/// product (`⌈log₂ n⌉` squarings, `O(n³ log n)` work); it exists as the
/// generic reference the concave spine computation specializes.
pub fn all_pairs_min_paths(m: &Matrix) -> Matrix {
    assert_eq!(m.rows(), m.cols(), "digraph matrices are square");
    let n = m.rows();
    let mut acc = m.entrywise_min(&Matrix::identity(n));
    let mut span = 1usize;
    while span + 1 < n.max(2) {
        acc = crate::dense::min_plus_naive(&acc, &acc, &CostTracer::disabled());
        span *= 2;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::min_plus_naive;
    use partree_core::Cost;

    /// A small concave digraph: a path 0 → 1 → … → n-1 with weighted
    /// shortcut edges, plus a free self-loop at 0 (the paper's `M'`
    /// trick), in concave form: weight(i→j) = (j - i)² for j ≥ i (a
    /// convex-increment function of the jump, which is Monge), ∞ below
    /// the diagonal except the self-loop.
    fn quadratic_jump_graph(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if j >= i {
                Cost::from(((j - i) * (j - i)) as u64)
            } else {
                Cost::INFINITY
            }
        })
    }

    #[test]
    fn squared_matrix_matches_naive_power() {
        let m = quadratic_jump_graph(9);
        let trace = power_trace(&m, 3, &CostTracer::disabled());
        // Naive m^8 by repeated naive multiplication.
        let mut naive = m.clone();
        for _ in 0..3 {
            naive = min_plus_naive(&naive, &naive, &CostTracer::disabled());
        }
        assert!(trace.final_matrix().approx_eq(&naive, 1e-9));
        assert_eq!(trace.squarings(), 3);
    }

    #[test]
    fn zero_squarings_is_identity_operation() {
        let m = quadratic_jump_graph(5);
        let trace = power_trace(&m, 0, &CostTracer::disabled());
        assert!(trace.final_matrix().approx_eq(&m, 0.0));
        // A walk of length 2^0 = 1 is a single edge.
        assert_eq!(trace.reconstruct_walk(1, 4), Some(vec![1, 4]));
        assert_eq!(trace.reconstruct_walk(4, 1), None);
    }

    #[test]
    fn reconstructed_walk_has_correct_length_weight_and_edges() {
        let n = 13;
        let m = quadratic_jump_graph(n);
        let squarings = 4; // paths of length 16 ≥ n
        let trace = power_trace(&m, squarings, &CostTracer::disabled());
        for j in 0..n {
            let walk = trace.reconstruct_walk(0, j).expect("reachable");
            assert_eq!(walk.len(), (1 << squarings) + 1);
            assert_eq!(*walk.first().unwrap(), 0);
            assert_eq!(*walk.last().unwrap(), j);
            let weight: Cost = walk.windows(2).map(|e| m.get(e[0], e[1])).sum();
            assert!(
                weight.approx_eq(trace.final_matrix().get(0, j), 1e-9),
                "weight mismatch for j={j}"
            );
        }
    }

    #[test]
    fn optimal_jump_decomposition_is_found() {
        // With cost (jump)², the cheapest way to advance d in k steps is
        // d/k-balanced jumps; with a free self-loop at 0 the walk may
        // dwell first. Check the known optimum for n-1 = 12 in ≤ 16
        // steps: twelve 1-jumps = 12.
        let n = 13;
        let m = quadratic_jump_graph(n);
        let trace = power_trace(&m, 4, &CostTracer::disabled());
        assert_eq!(trace.final_matrix().get(0, n - 1), Cost::from(12u64));
        let path = trace.reconstruct_simple_path(0, n - 1).unwrap();
        // Collapsed path: 0,1,2,…,12 (dwell steps at 0 removed).
        assert_eq!(path, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn all_pairs_matches_floyd_warshall() {
        let n = 24;
        // Sparse deterministic digraph with integer weights.
        let m = Matrix::from_fn(n, n, |i, j| {
            let h = (i * 31 + j * 17) % 97; // deterministic sparsity
            if i != j && h % 4 == 0 {
                Cost::from(1 + (h as u64 % 20))
            } else {
                Cost::INFINITY
            }
        });
        let fast = all_pairs_min_paths(&m);
        // Floyd–Warshall reference.
        let mut d = vec![vec![Cost::INFINITY; n]; n];
        for i in 0..n {
            d[i][i] = Cost::ZERO;
            for j in 0..n {
                d[i][j] = d[i][j].min(m.get(i, j));
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    d[i][j] = d[i][j].min(d[i][k] + d[k][j]);
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(fast.get(i, j), d[i][j], "({i},{j})");
            }
        }
    }

    #[test]
    fn all_pairs_tiny() {
        let m = Matrix::identity(1);
        assert!(all_pairs_min_paths(&m).approx_eq(&Matrix::identity(1), 0.0));
        // Two nodes, one edge.
        let mut m = Matrix::infinite(2, 2);
        m.set(0, 1, Cost::from(5u64));
        let c = all_pairs_min_paths(&m);
        assert_eq!(c.get(0, 1), Cost::from(5u64));
        assert_eq!(c.get(0, 0), Cost::ZERO);
        assert!(c.get(1, 0).is_infinite());
    }

    #[test]
    fn unreachable_pairs_return_none() {
        let m = quadratic_jump_graph(6);
        let trace = power_trace(&m, 3, &CostTracer::disabled());
        assert!(trace.reconstruct_walk(5, 0).is_none());
        assert!(trace.reconstruct_simple_path(3, 1).is_none());
    }
}
