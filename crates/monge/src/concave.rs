//! The quadrangle condition and its closure properties.
//!
//! A matrix is *concave* (the paper's term; elsewhere: Monge, or
//! submodular) when `M[i][j] + M[k][l] ≤ M[i][l] + M[k][j]` for all
//! `i < k`, `j < l`. Checking adjacent quadruples suffices because the
//! general inequality telescopes from adjacent ones.
//!
//! Infinite entries follow the extended-arithmetic convention: the
//! inequality holds vacuously whenever its right-hand side is `+∞`; a
//! finite right-hand side with an infinite left-hand side is a violation.
//!
//! This module also carries the closure facts the algorithms lean on,
//! verified here by tests and by property tests:
//!
//! * the `(min,+)` product of concave matrices is concave (this is what
//!   lets `A_h` and `(M')^{2^k}` stay in the class across iterations —
//!   Lemma 5.1's engine);
//! * row/column translations (`M[i][j] + r_i + c_j`) preserve concavity —
//!   which is why adding the weight matrix `S` keeps `A_h` concave;
//! * row/column *subsampling* preserves concavity — which is why the
//!   recursion on `A_even`, `B_even` stays in the class.

use crate::dense::Matrix;
use partree_core::Cost;

/// Checks the quadrangle condition on all adjacent quadruples, with
/// absolute tolerance `tol` for float workloads (`0.0` gives the exact
/// check — appropriate for integer-weight inputs).
pub fn is_concave(m: &Matrix, tol: f64) -> bool {
    first_violation(m, tol).is_none()
}

/// Returns the first adjacent quadruple violating the quadrangle
/// condition, as `(i, j)` for the quadruple on rows `i, i+1` and columns
/// `j, j+1` — or `None` if the matrix is concave.
pub fn first_violation(m: &Matrix, tol: f64) -> Option<(usize, usize)> {
    for i in 0..m.rows().saturating_sub(1) {
        for j in 0..m.cols().saturating_sub(1) {
            if violates(
                m.get(i, j),
                m.get(i + 1, j + 1),
                m.get(i, j + 1),
                m.get(i + 1, j),
                tol,
            ) {
                return Some((i, j));
            }
        }
    }
    None
}

/// Does `a + d ≤ b + c` fail (within `tol`), in extended arithmetic?
/// (`a = M[i][j]`, `d = M[i+1][j+1]`, `b = M[i][j+1]`, `c = M[i+1][j]`.)
#[inline]
fn violates(a: Cost, d: Cost, b: Cost, c: Cost, tol: f64) -> bool {
    let rhs_inf = b.is_infinite() || c.is_infinite();
    if rhs_inf {
        return false; // RHS = +∞ — condition holds vacuously.
    }
    let lhs_inf = a.is_infinite() || d.is_infinite();
    if lhs_inf {
        return true; // LHS = +∞ > finite RHS.
    }
    a.value() + d.value() > b.value() + c.value() + tol
}

/// Extracts the row/column-subsampled matrix taking every `stride`-th row
/// and every `stride`-th column (the `A_{mod m}` of §4.2). Concavity is
/// preserved.
pub fn subsample(m: &Matrix, row_stride: usize, col_stride: usize) -> Matrix {
    assert!(row_stride >= 1 && col_stride >= 1);
    let rows: Vec<usize> = (0..m.rows()).step_by(row_stride).collect();
    let cols: Vec<usize> = (0..m.cols()).step_by(col_stride).collect();
    Matrix::from_fn(rows.len(), cols.len(), |i, j| m.get(rows[i], cols[j]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::min_plus_naive;
    use partree_core::gen;

    fn random_concave(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_rows(&gen::random_monge(rows, cols, seed))
    }

    #[test]
    fn generated_matrices_are_concave() {
        for seed in 0..10 {
            assert!(is_concave(&random_concave(12, 17, seed), 1e-9));
        }
    }

    #[test]
    fn violation_detected_and_located() {
        let mut m = random_concave(6, 6, 3);
        // Break the condition at (2,2)/(3,3) by making the diagonal huge.
        m.set(3, 3, m.get(3, 3) + Cost::new(1e6));
        assert!(!is_concave(&m, 1e-9));
        let (i, j) = first_violation(&m, 1e-9).unwrap();
        assert!(i <= 3 && j <= 3, "violation at ({i},{j})");
    }

    #[test]
    fn infinite_rhs_is_vacuous() {
        // [0 ∞; 5 3]: quadruple has b = ∞ → holds.
        let mut m = Matrix::filled(2, 2, Cost::ZERO);
        m.set(0, 1, Cost::INFINITY);
        m.set(1, 0, Cost::new(5.0));
        m.set(1, 1, Cost::new(3.0));
        assert!(is_concave(&m, 0.0));
    }

    #[test]
    fn infinite_lhs_with_finite_rhs_violates() {
        // [∞ 0; 0 0]: a = ∞, b = c = d = 0 → ∞ > 0 violation.
        let mut m = Matrix::filled(2, 2, Cost::ZERO);
        m.set(0, 0, Cost::INFINITY);
        assert!(!is_concave(&m, 0.0));
    }

    #[test]
    fn upper_triangular_weight_matrix_is_concave() {
        // The paper's S[i,j] = p_{i+1}+…+p_j for i<j, ∞ otherwise.
        let w = [2.0, 7.0, 1.0, 8.0, 2.0];
        let pw = partree_core::cost::PrefixWeights::new(&w);
        let n = w.len();
        let s = Matrix::from_fn(n + 1, n + 1, |i, j| {
            if i < j {
                pw.sum(i, j)
            } else {
                Cost::INFINITY
            }
        });
        assert!(is_concave(&s, 1e-9), "S must be concave (paper, §5)");
    }

    #[test]
    fn product_of_concave_is_concave() {
        for seed in 0..8 {
            let a = random_concave(9, 11, seed);
            let b = random_concave(11, 7, seed + 100);
            let c = min_plus_naive(&a, &b, &partree_pram::CostTracer::disabled());
            assert!(is_concave(&c, 1e-6), "seed={seed}");
        }
    }

    #[test]
    fn translation_preserves_concavity() {
        let a = random_concave(8, 8, 5);
        let shifted = Matrix::from_fn(8, 8, |i, j| {
            a.get(i, j) + Cost::from(i as u64 * 3) + Cost::from(j as u64 * 5)
        });
        assert!(is_concave(&shifted, 1e-9));
    }

    #[test]
    fn subsample_preserves_concavity_and_entries() {
        let a = random_concave(13, 10, 2);
        let s = subsample(&a, 2, 3);
        assert_eq!(s.rows(), 7);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.get(3, 2), a.get(6, 6));
        assert!(is_concave(&s, 1e-9));
    }

    #[test]
    fn degenerate_shapes_are_concave() {
        assert!(is_concave(&Matrix::infinite(0, 0), 0.0));
        assert!(is_concave(&Matrix::infinite(1, 5), 0.0));
        assert!(is_concave(&Matrix::infinite(5, 1), 0.0));
    }
}
