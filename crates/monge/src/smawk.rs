//! SMAWK row minima and a SMAWK-based concave product.
//!
//! The paper acknowledges Alok Aggarwal; the SMAWK algorithm (Aggarwal,
//! Klawe, Moran, Shor, Wilber 1987) is the sequential ancestor of §4's
//! parallel technique: it finds all row minima of a *totally monotone*
//! matrix in `O(p + q)` time. A concave (Monge) matrix is totally
//! monotone, and for a fixed row `i` of the product `C = A ⋆ B` the
//! matrix `D_i[k][j] = A[i][k] + B[k][j]` inherits concavity from `B`,
//! so the column minima of `D_i` — row `i` of `C` — come out of one
//! SMAWK call. Running the `p` calls in parallel gives an `O(n²)`-work,
//! embarrassingly parallel concave product: the ablation baseline
//! `smawk_mul` of experiment E1.
//!
//! This module handles *finite* matrices; the `+∞`-structured inputs of
//! the Huffman/OBST pipelines go through [`crate::cut::concave_mul`],
//! which manages infinite spans explicitly.

use crate::dense::Matrix;
use partree_core::Cost;
use partree_pram::CostTracer;
use rayon::prelude::*;

/// Computes, for each row `i` of the implicit `rows × cols` totally
/// monotone matrix `f`, the smallest column index minimizing `f(i, ·)`.
///
/// `f` must satisfy total monotonicity for minima: for `i < i'` and
/// `j < j'`, `f(i, j') < f(i, j)` implies `f(i', j') < f(i', j)` — in
/// particular every concave matrix qualifies.
pub fn smawk_row_minima(
    rows: usize,
    cols: usize,
    f: &(impl Fn(usize, usize) -> Cost + Sync),
    tracer: &CostTracer,
) -> Vec<u32> {
    let mut result = vec![0u32; rows];
    if rows == 0 || cols == 0 {
        return result;
    }
    let row_ids: Vec<usize> = (0..rows).collect();
    let col_ids: Vec<usize> = (0..cols).collect();
    let mut ops = 0u64;
    smawk_inner(&row_ids, col_ids, f, &mut result, &mut ops);
    tracer.add_work(ops);
    result
}

fn smawk_inner(
    rows: &[usize],
    cols: Vec<usize>,
    f: &(impl Fn(usize, usize) -> Cost + Sync),
    result: &mut [u32],
    ops: &mut u64,
) {
    if rows.is_empty() {
        return;
    }

    // REDUCE: prune columns that cannot hold any row's minimum, keeping
    // at most |rows| survivors. Strict comparison keeps the *leftmost*
    // minimum.
    let cols = if cols.len() > rows.len() {
        let mut stack: Vec<usize> = Vec::with_capacity(rows.len());
        for c in cols {
            while let Some(&top) = stack.last() {
                let r = rows[stack.len() - 1];
                *ops += 1;
                if f(r, c) < f(r, top) {
                    stack.pop();
                } else {
                    break;
                }
            }
            if stack.len() < rows.len() {
                stack.push(c);
            }
        }
        stack
    } else {
        cols
    };

    if rows.len() == 1 {
        // Base: scan the surviving columns.
        let i = rows[0];
        let mut best = Cost::INFINITY;
        let mut arg = cols[0];
        for &c in &cols {
            *ops += 1;
            if f(i, c) < best {
                best = f(i, c);
                arg = c;
            }
        }
        result[i] = arg as u32;
        return;
    }

    // Recurse on the odd-indexed rows.
    let odd_rows: Vec<usize> = rows.iter().copied().skip(1).step_by(2).collect();
    smawk_inner(&odd_rows, cols.clone(), f, result, ops);

    // INTERPOLATE the even-indexed rows between their odd neighbours.
    let mut col_pos = 0usize;
    for (idx, &i) in rows.iter().enumerate().step_by(2) {
        let lo = if idx == 0 {
            cols[0]
        } else {
            result[rows[idx - 1]] as usize
        };
        let hi = if idx + 1 < rows.len() {
            result[rows[idx + 1]] as usize
        } else {
            *cols.last().expect("cols nonempty")
        };
        // Advance to the first surviving column ≥ lo.
        while cols[col_pos] < lo {
            col_pos += 1;
        }
        let mut best = Cost::INFINITY;
        let mut arg = cols[col_pos];
        let mut t = col_pos;
        while t < cols.len() && cols[t] <= hi {
            *ops += 1;
            if f(i, cols[t]) < best {
                best = f(i, cols[t]);
                arg = cols[t];
            }
            t += 1;
        }
        result[i] = arg as u32;
    }
}

/// Row minima by plain divide-and-conquer on the *monotone* (not
/// totally monotone) property: solve the middle row by full scan,
/// recurse left/right with narrowed column ranges. `O((p + q) log p)`
/// comparisons — the simpler classical alternative SMAWK improves on;
/// kept as an ablation and cross-check.
pub fn monotone_row_minima(
    rows: usize,
    cols: usize,
    f: &(impl Fn(usize, usize) -> Cost + Sync),
    tracer: &CostTracer,
) -> Vec<u32> {
    let mut result = vec![0u32; rows];
    if rows == 0 || cols == 0 {
        return result;
    }
    let mut ops = 0u64;
    fn rec(
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
        f: &impl Fn(usize, usize) -> Cost,
        result: &mut [u32],
        ops: &mut u64,
    ) {
        if r0 > r1 {
            return;
        }
        let mid = r0 + (r1 - r0) / 2;
        let mut best = Cost::INFINITY;
        let mut arg = c0;
        for c in c0..=c1 {
            *ops += 1;
            if f(mid, c) < best {
                best = f(mid, c);
                arg = c;
            }
        }
        result[mid] = arg as u32;
        if mid > r0 {
            rec(r0, mid - 1, c0, arg, f, result, ops);
        }
        if mid < r1 {
            rec(mid + 1, r1, arg, c1, f, result, ops);
        }
    }
    rec(0, rows - 1, 0, cols - 1, f, &mut result, &mut ops);
    tracer.add_work(ops);
    result
}

/// Concave `(min,+)` product via one SMAWK call per output row, rows in
/// parallel. Requires all-finite inputs; see the module docs.
pub fn smawk_mul(a: &Matrix, b: &Matrix, tracer: &CostTracer) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (p, q, r) = (a.rows(), a.cols(), b.cols());
    let rows: Vec<Vec<Cost>> = (0..p)
        .into_par_iter()
        .map(|i| {
            let a_row = a.row(i);
            // Column minima of D[k][j] = A[i][k] + B[k][j]: transpose the
            // roles so SMAWK's "rows" are the product's columns j.
            let g = |j: usize, k: usize| a_row[k] + b.get(k, j);
            let args = smawk_row_minima(r, q, &g, tracer);
            (0..r)
                .map(|j| {
                    let k = args[j] as usize;
                    a_row[k] + b.get(k, j)
                })
                .collect()
        })
        .collect();
    // Depth: one parallel round of per-row *sequential* SMAWK — the
    // O(q + r) scan is this ablation baseline's critical path.
    tracer.add_depth((q + r) as u64);
    Matrix::from_fn(p, r, |i, j| rows[i][j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::min_plus_naive;
    use partree_core::gen;

    fn random_concave(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_rows(&gen::random_monge(rows, cols, seed))
    }

    fn brute_row_minima(m: &Matrix) -> Vec<u32> {
        (0..m.rows())
            .map(|i| {
                let mut best = Cost::INFINITY;
                let mut arg = 0u32;
                for j in 0..m.cols() {
                    if m.get(i, j) < best {
                        best = m.get(i, j);
                        arg = j as u32;
                    }
                }
                arg
            })
            .collect()
    }

    #[test]
    fn row_minima_match_brute_force() {
        for seed in 0..10 {
            let m = random_concave(23, 17, seed);
            let fast = smawk_row_minima(
                m.rows(),
                m.cols(),
                &|i, j| m.get(i, j),
                &CostTracer::disabled(),
            );
            assert_eq!(fast, brute_row_minima(&m), "seed={seed}");
        }
    }

    #[test]
    fn row_minima_rectangular_extremes() {
        for (p, q) in [(1, 9), (9, 1), (1, 1), (2, 31), (31, 2)] {
            let m = random_concave(p, q, 3);
            let fast = smawk_row_minima(p, q, &|i, j| m.get(i, j), &CostTracer::disabled());
            assert_eq!(fast, brute_row_minima(&m), "({p},{q})");
        }
    }

    #[test]
    fn row_minima_empty() {
        assert!(smawk_row_minima(0, 5, &|_, _| Cost::ZERO, &CostTracer::disabled()).is_empty());
        assert_eq!(
            smawk_row_minima(3, 0, &|_, _| Cost::ZERO, &CostTracer::disabled()),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn ties_break_leftmost() {
        // All-equal matrix: every row's minimum must be column 0.
        let fast = smawk_row_minima(6, 8, &|_, _| Cost::new(5.0), &CostTracer::disabled());
        assert!(fast.iter().all(|&c| c == 0));
    }

    #[test]
    fn work_is_linear_not_quadratic() {
        let n = 512;
        let m = random_concave(n, n, 4);
        let c = CostTracer::named("smawk");
        let _ = smawk_row_minima(n, n, &|i, j| m.get(i, j), &c);
        let got = c.aggregate().work;
        assert!(
            got <= 20 * n as u64,
            "SMAWK used {got} ops on n={n} (expected O(n))"
        );
    }

    #[test]
    fn monotone_divide_matches_smawk_and_brute() {
        for seed in 0..8 {
            let m = random_concave(21, 33, seed);
            let f = |i: usize, j: usize| m.get(i, j);
            let a = monotone_row_minima(m.rows(), m.cols(), &f, &CostTracer::disabled());
            let b = smawk_row_minima(m.rows(), m.cols(), &f, &CostTracer::disabled());
            assert_eq!(a, brute_row_minima(&m), "seed={seed}");
            assert_eq!(a, b, "seed={seed}");
        }
        assert!(monotone_row_minima(0, 5, &|_, _| Cost::ZERO, &CostTracer::disabled()).is_empty());
    }

    #[test]
    fn monotone_divide_work_is_n_log_n() {
        let n = 512;
        let m = random_concave(n, n, 7);
        let c = CostTracer::named("divide");
        let _ = monotone_row_minima(n, n, &|i, j| m.get(i, j), &c);
        let divide = c.aggregate().work;
        let bound = 3 * (n as u64) * (n as f64).log2() as u64;
        assert!(divide <= bound, "used {divide} ops, bound {bound}");
        // …and strictly more than SMAWK's linear count (the ablation).
        let s = CostTracer::named("smawk");
        let _ = smawk_row_minima(n, n, &|i, j| m.get(i, j), &s);
        let smawk = s.aggregate().work;
        assert!(smawk < divide, "SMAWK {smawk} should beat divide {divide}");
    }

    #[test]
    fn smawk_mul_matches_naive() {
        for seed in 0..6 {
            let a = random_concave(14, 9, seed);
            let b = random_concave(9, 19, seed + 77);
            let fast = smawk_mul(&a, &b, &CostTracer::disabled());
            let slow = min_plus_naive(&a, &b, &CostTracer::disabled());
            assert!(fast.approx_eq(&slow, 1e-9), "seed={seed}");
        }
    }

    #[test]
    fn smawk_mul_work_quadratic() {
        let n = 128;
        let a = random_concave(n, n, 1);
        let b = random_concave(n, n, 2);
        let c = CostTracer::named("smawk_mul");
        let _ = smawk_mul(&a, &b, &c);
        let got = c.aggregate().work;
        assert!(
            got <= 24 * (n * n) as u64,
            "smawk_mul used {got} ops (expected O(n²))"
        );
    }
}
