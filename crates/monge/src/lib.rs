//! # partree-monge
//!
//! Concave (Monge) matrices and their fast parallel multiplication —
//! Section 4 of *Constructing Trees in Parallel*, the ingredient that
//! drops the Huffman/OBST processor counts from `n³` to `n²/log n`.
//!
//! A rectangular matrix `M` is **concave** (satisfies the *quadrangle
//! condition*) when
//!
//! ```text
//! M[i][j] + M[k][l] ≤ M[i][l] + M[k][j]      for all i < k, j < l.
//! ```
//!
//! Multiplication is over the closed semiring `(min, +)` on rationals
//! extended with `+∞`. The paper's key structural fact is that the
//! *cut matrix* `Cut(A,B)[i][j] = argmin_k (A[i][k] + B[k][j])` (smallest
//! `k` on ties) is nondecreasing along rows and columns, which lets the
//! product be computed with `O(n²)` comparisons instead of `O(n³)`.
//!
//! Modules:
//!
//! * [`dense`] — the dense `(min,+)` matrix type and the naive `O(n³)`
//!   product (the paper's stated baseline);
//! * [`concave`] — quadrangle-condition checks and the closure lemmas;
//! * [`cut`] — the recursive `Cut(A,B)` algorithm of §4.1, realized as a
//!   stride-halving refinement parallelized with rayon;
//! * [`bottom_up`] — the accelerated `n^{1/2^m}`-stride variant of §4.2;
//! * [`smawk`] — SMAWK row-minima and a per-row SMAWK-based concave
//!   product (the Aggarwal et al. technique the paper builds on; used as
//!   an ablation);
//! * [`closure`] — repeated squaring with witness retention, powering the
//!   paper's spine computation (`(M')^{2^{⌈log n⌉}}`) and path recovery;
//! * [`boolean`] — bit-packed Boolean matrices and their parallel
//!   product, the `M(n)` primitive of §8's linear-CFL recognizer.

#![deny(missing_docs)]
#![warn(clippy::all)]
// Index-based loops over multiple parallel arrays are the idiom of
// matrix/PRAM code; iterator rewrites obscure the index arithmetic the
// correctness arguments are phrased in.
#![allow(clippy::needless_range_loop)]

pub mod boolean;
pub mod bottom_up;
pub mod closure;
pub mod concave;
pub mod cut;
pub mod dense;
pub mod smawk;

pub use boolean::BitMatrix;
pub use cut::{concave_mul, MinPlusProduct, UNTRUSTED};
pub use dense::Matrix;
