//! Bit-packed Boolean matrices and their parallel multiplication.
//!
//! Section 8 reduces linear-CFL recognition to reachability combined by
//! Boolean matrix multiplication: "taking time O(log n) with M(n)
//! processors". `M(n)` is whatever Boolean matrix multiply one has; the
//! paper cites `M(n) = O(n^{2.36})` via fast matrix multiplication. We
//! substitute the practical engineered equivalent: 64-way bit-packing
//! with rayon row-parallelism — `n³/64` bit-ops, embarrassingly
//! parallel, exactly the primitive a production recognizer would use.
//! (A Strassen-like sub-cubic multiply changes the constant landscape,
//! not the algorithm above it; DESIGN.md records this substitution.)
//!
//! Matrices are rectangular: the recognizer multiplies layer-transfer
//! matrices of shape `(n−d)·|N| × (n−d+1)·|N|`.

use rayon::prelude::*;

/// A rectangular Boolean matrix packed 64 entries per word, row-major.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// The all-zeros `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> BitMatrix {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> BitMatrix {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds from a predicate (rows in parallel).
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> bool + Sync) -> BitMatrix {
        let words_per_row = cols.div_ceil(64);
        let mut bits = vec![0u64; rows * words_per_row];
        bits.par_chunks_mut(words_per_row.max(1))
            .enumerate()
            .for_each(|(i, row)| {
                for j in 0..cols {
                    if f(i, j) {
                        row[j / 64] |= 1 << (j % 64);
                    }
                }
            });
        BitMatrix {
            rows,
            cols,
            words_per_row,
            bits,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.rows && j < self.cols);
        (self.bits[i * self.words_per_row + j / 64] >> (j % 64)) & 1 == 1
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        debug_assert!(i < self.rows && j < self.cols);
        let w = &mut self.bits[i * self.words_per_row + j / 64];
        if v {
            *w |= 1 << (j % 64);
        } else {
            *w &= !(1 << (j % 64));
        }
    }

    /// Row `i` as packed words.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Number of set entries.
    pub fn count_ones(&self) -> usize {
        self.bits.par_iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Boolean product `self · rhs` (∨ of ∧), rows in parallel: for each
    /// set bit `k` of row `i`, OR row `k` of `rhs` into the output row.
    /// `O(rows·cols + z·cols/64)` word operations where `z` is the
    /// number of set bits — the engineered `M(n)`.
    pub fn mul(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        let wpr = out.words_per_row;
        out.bits
            .par_chunks_mut(wpr.max(1))
            .enumerate()
            .for_each(|(i, out_row)| {
                for (wi, &word) in self.row(i).iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let k = wi * 64 + w.trailing_zeros() as usize;
                        w &= w - 1;
                        let rk = rhs.row(k);
                        for (o, &r) in out_row.iter_mut().zip(rk) {
                            *o |= r;
                        }
                    }
                }
            });
        out
    }

    /// Entry-by-entry reference product (test oracle).
    pub fn mul_naive(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, rhs.rows);
        BitMatrix::from_fn(self.rows, rhs.cols, |i, j| {
            (0..self.cols).any(|k| self.get(i, k) && rhs.get(k, j))
        })
    }

    /// Entrywise OR (shapes must match).
    pub fn or(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let bits = self
            .bits
            .par_iter()
            .zip(rhs.bits.par_iter())
            .map(|(&a, &b)| a | b)
            .collect();
        BitMatrix { bits, ..*self }
    }

    /// Reflexive-transitive closure (square matrices) by repeated
    /// squaring of `I ∨ self`: `⌈log₂ n⌉` Boolean products.
    pub fn transitive_closure(&self) -> BitMatrix {
        assert_eq!(self.rows, self.cols, "closure of a non-square matrix");
        let mut acc = self.or(&BitMatrix::identity(self.rows));
        let mut span = 1usize;
        while span < self.rows {
            acc = acc.mul(&acc);
            span *= 2;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_bits(rows: usize, cols: usize, density: f64, seed: u64) -> BitMatrix {
        let mut r = partree_core::gen::rng(seed);
        let flat: Vec<bool> = (0..rows * cols).map(|_| r.gen_bool(density)).collect();
        BitMatrix::from_fn(rows, cols, |i, j| flat[i * cols + j])
    }

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let mut m = BitMatrix::zeros(130, 130);
        for j in [0usize, 63, 64, 65, 127, 128, 129] {
            m.set(77, j, true);
            assert!(m.get(77, j));
        }
        assert_eq!(m.count_ones(), 7);
        m.set(77, 64, false);
        assert!(!m.get(77, 64));
        assert_eq!(m.count_ones(), 6);
    }

    #[test]
    fn identity_multiplication() {
        let m = random_bits(70, 70, 0.3, 1);
        let id = BitMatrix::identity(70);
        assert_eq!(m.mul(&id), m);
        assert_eq!(id.mul(&m), m);
    }

    #[test]
    fn packed_product_matches_naive_square() {
        for (n, density, seed) in [
            (1, 0.5, 1),
            (17, 0.2, 2),
            (64, 0.1, 3),
            (100, 0.05, 4),
            (129, 0.3, 5),
        ] {
            let a = random_bits(n, n, density, seed);
            let b = random_bits(n, n, density, seed + 100);
            assert_eq!(a.mul(&b), a.mul_naive(&b), "n={n}");
        }
    }

    #[test]
    fn packed_product_matches_naive_rectangular() {
        for (p, q, r, seed) in [
            (3, 70, 5, 1),
            (65, 2, 130, 2),
            (1, 1, 1, 3),
            (40, 100, 7, 4),
        ] {
            let a = random_bits(p, q, 0.2, seed);
            let b = random_bits(q, r, 0.2, seed + 50);
            let c = a.mul(&b);
            assert_eq!(c.rows(), p);
            assert_eq!(c.cols(), r);
            assert_eq!(c, a.mul_naive(&b), "({p},{q},{r})");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn shape_mismatch_panics() {
        let a = BitMatrix::zeros(3, 4);
        let b = BitMatrix::zeros(5, 2);
        let _ = a.mul(&b);
    }

    #[test]
    fn or_is_entrywise() {
        let a = random_bits(40, 23, 0.2, 7);
        let b = random_bits(40, 23, 0.2, 8);
        let c = a.or(&b);
        for i in 0..40 {
            for j in 0..23 {
                assert_eq!(c.get(i, j), a.get(i, j) || b.get(i, j));
            }
        }
    }

    #[test]
    fn transitive_closure_of_a_path() {
        let n = 4;
        let m = BitMatrix::from_fn(n, n, |i, j| j == i + 1);
        let c = m.transitive_closure();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(c.get(i, j), j >= i, "({i},{j})");
            }
        }
    }

    #[test]
    fn transitive_closure_matches_floyd_warshall() {
        let n = 60;
        let m = random_bits(n, n, 0.04, 11);
        let fast = m.transitive_closure();
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n {
            reach[i][i] = true;
            for j in 0..n {
                if m.get(i, j) {
                    reach[i][j] = true;
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    for j in 0..n {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(fast.get(i, j), reach[i][j], "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::zeros(0, 0);
        assert_eq!(m.count_ones(), 0);
        let c = m.mul(&m);
        assert_eq!(c.rows(), 0);
    }
}
