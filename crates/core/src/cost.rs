//! The `(min, +)` closed-semiring carrier used throughout the paper.
//!
//! Section 4 of the paper defines matrix multiplication "over the closed
//! semiring `(min, +)`, where the domain is the set of rational numbers
//! extended with `+∞`". [`Cost`] is that domain: a totally ordered wrapper
//! over `f64` whose addition saturates at `+∞` and which is never NaN.
//!
//! Integer frequency inputs (the common case — symbol counts, access
//! counts) are represented exactly up to `2^53`, so all the dynamic
//! programs in the workspace are *exact* on integer workloads.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// An element of the `(min, +)` closed semiring: a finite rational cost or
/// `+∞`.
///
/// Invariant: the inner value is never NaN. All constructors enforce this;
/// arithmetic on non-NaN inputs cannot produce NaN because the only
/// dangerous combination (`∞ - ∞`) is excluded by [`Cost::sub`] debug
/// assertions and saturating semantics.
///
/// `Cost` implements a *total* order (`Ord`), with `+∞` as the maximum
/// element, which is what lets it live in `min`-reductions and sort calls.
///
/// Serialization goes through the raw `f64` (the `From`/`TryFrom` pair
/// below), so the NaN invariant is re-validated on deserialization.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Cost(f64);

impl From<Cost> for f64 {
    #[inline]
    fn from(c: Cost) -> f64 {
        c.0
    }
}

impl TryFrom<f64> for Cost {
    type Error = String;

    fn try_from(v: f64) -> std::result::Result<Cost, String> {
        if v.is_nan() || v == f64::NEG_INFINITY {
            Err(format!("{v} is not a valid Cost"))
        } else {
            Ok(Cost(v))
        }
    }
}

impl Cost {
    /// The additive identity of `(+)` and the "free edge" of the semiring.
    pub const ZERO: Cost = Cost(0.0);
    /// The identity of `min` — the "no path / no tree exists" value the
    /// paper writes as `+∞`.
    pub const INFINITY: Cost = Cost(f64::INFINITY);

    /// Wraps a finite or `+∞` value. Panics on NaN or `-∞`.
    #[inline]
    pub fn new(v: f64) -> Cost {
        assert!(!v.is_nan(), "Cost cannot be NaN");
        assert!(v != f64::NEG_INFINITY, "Cost cannot be -infinity");
        Cost(v)
    }

    /// The raw `f64` value (possibly `+∞`).
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// `true` iff this is the semiring's `+∞`.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 == f64::INFINITY
    }

    /// `true` iff this is a finite cost.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The `min` operation of the semiring.
    #[inline]
    pub fn min(self, other: Cost) -> Cost {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The `max` of two costs (not a semiring operation, but handy).
    #[inline]
    pub fn max(self, other: Cost) -> Cost {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Absolute difference, treating `∞ - ∞` as `0` (used by approximate
    /// comparisons in tests).
    #[inline]
    pub fn abs_diff(self, other: Cost) -> f64 {
        if self.is_infinite() && other.is_infinite() {
            0.0
        } else {
            (self.0 - other.0).abs()
        }
    }

    /// `true` when two costs agree to within `tol` (with `∞ == ∞`).
    #[inline]
    pub fn approx_eq(self, other: Cost, tol: f64) -> bool {
        self.abs_diff(other) <= tol
    }
}

impl From<u64> for Cost {
    #[inline]
    fn from(v: u64) -> Cost {
        Cost(v as f64)
    }
}

impl From<u32> for Cost {
    #[inline]
    fn from(v: u32) -> Cost {
        Cost(f64::from(v))
    }
}

impl Eq for Cost {}

impl PartialOrd for Cost {
    #[inline]
    fn partial_cmp(&self, other: &Cost) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    #[inline]
    fn cmp(&self, other: &Cost) -> Ordering {
        // Inner values are never NaN, so total_cmp agrees with the usual
        // order and makes +∞ the maximum.
        self.0.total_cmp(&other.0)
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        // f64 already saturates: x + ∞ = ∞. NaN cannot arise because
        // -∞ is excluded by the invariant.
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    #[inline]
    fn sub(self, rhs: Cost) -> Cost {
        debug_assert!(
            !(self.is_infinite() && rhs.is_infinite()),
            "∞ - ∞ is undefined in the (min,+) semiring"
        );
        Cost(self.0 - rhs.0)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Prefix sums of a weight vector, exposing the paper's
/// `S[i, j] = p_{i+1} + … + p_j` in O(1) per query.
///
/// The paper indexes DP matrices by *boundaries* `0..=n`; `PrefixWeights`
/// adopts the same convention, so `sum(i, j)` is the total weight of
/// items `i+1 ..= j` (1-based items).
#[derive(Clone, Debug)]
pub struct PrefixWeights {
    prefix: Vec<f64>,
}

impl PrefixWeights {
    /// Builds prefix sums over `weights` (`weights[k]` is the paper's
    /// `p_{k+1}`). All weights must be finite and non-negative.
    pub fn new(weights: &[f64]) -> PrefixWeights {
        let mut prefix = Vec::with_capacity(weights.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for (k, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight p_{} = {w} must be finite and non-negative",
                k + 1
            );
            acc += w;
            prefix.push(acc);
        }
        PrefixWeights { prefix }
    }

    /// Number of items `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// `true` iff there are no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The paper's `S[i, j] = Σ_{k=i+1}^{j} p_k`, for boundaries
    /// `0 ≤ i ≤ j ≤ n`.
    #[inline]
    pub fn sum(&self, i: usize, j: usize) -> Cost {
        debug_assert!(i <= j && j < self.prefix.len());
        Cost(self.prefix[j] - self.prefix[i])
    }

    /// Total weight `S[0, n]`.
    #[inline]
    pub fn total(&self) -> Cost {
        Cost(self.prefix[self.prefix.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_additive_identity() {
        let c = Cost::new(3.5);
        assert_eq!(c + Cost::ZERO, c);
        assert_eq!(Cost::ZERO + c, c);
    }

    #[test]
    fn infinity_is_min_identity_and_add_absorbing() {
        let c = Cost::new(7.0);
        assert_eq!(c.min(Cost::INFINITY), c);
        assert_eq!(Cost::INFINITY.min(c), c);
        assert_eq!((c + Cost::INFINITY), Cost::INFINITY);
        assert!(Cost::INFINITY.is_infinite());
    }

    #[test]
    fn total_order_places_infinity_last() {
        let mut v = [Cost::INFINITY, Cost::new(2.0), Cost::ZERO, Cost::new(-1.0)];
        v.sort();
        assert_eq!(v[0], Cost::new(-1.0));
        assert_eq!(v[3], Cost::INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cost::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "-infinity")]
    fn neg_infinity_rejected() {
        let _ = Cost::new(f64::NEG_INFINITY);
    }

    #[test]
    fn integer_conversions_are_exact() {
        assert_eq!(Cost::from(41u64) + Cost::from(1u64), Cost::new(42.0));
        assert_eq!(Cost::from(7u32).value(), 7.0);
    }

    #[test]
    fn abs_diff_and_approx_eq() {
        assert_eq!(Cost::INFINITY.abs_diff(Cost::INFINITY), 0.0);
        assert!(Cost::new(1.0).approx_eq(Cost::new(1.0 + 1e-12), 1e-9));
        assert!(!Cost::new(1.0).approx_eq(Cost::new(2.0), 1e-9));
        assert!(!Cost::new(1.0).approx_eq(Cost::INFINITY, 1e9));
    }

    #[test]
    fn serde_roundtrip_and_validation() {
        // Through serde_json-free channels: use the serde value model via
        // the f64 conversions directly.
        assert_eq!(f64::from(Cost::new(2.5)), 2.5);
        assert_eq!(Cost::try_from(2.5).unwrap(), Cost::new(2.5));
        assert_eq!(Cost::try_from(f64::INFINITY).unwrap(), Cost::INFINITY);
        assert!(Cost::try_from(f64::NAN).is_err());
        assert!(Cost::try_from(f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn sum_folds_from_zero() {
        let total: Cost = [1.0, 2.0, 3.0].into_iter().map(Cost::new).sum();
        assert_eq!(total, Cost::new(6.0));
    }

    #[test]
    fn prefix_weights_match_naive_sums() {
        let w = [3.0, 1.0, 4.0, 1.0, 5.0];
        let pw = PrefixWeights::new(&w);
        assert_eq!(pw.len(), 5);
        for i in 0..=5 {
            for j in i..=5 {
                let naive: f64 = w[i..j].iter().sum();
                assert_eq!(pw.sum(i, j), Cost::new(naive), "S[{i},{j}]");
            }
        }
        assert_eq!(pw.total(), Cost::new(14.0));
    }

    #[test]
    fn prefix_weights_empty() {
        let pw = PrefixWeights::new(&[]);
        assert!(pw.is_empty());
        assert_eq!(pw.total(), Cost::ZERO);
        assert_eq!(pw.sum(0, 0), Cost::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn prefix_weights_reject_negative() {
        let _ = PrefixWeights::new(&[1.0, -2.0]);
    }
}
