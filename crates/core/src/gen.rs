//! Deterministic workload generators.
//!
//! Every experiment in EXPERIMENTS.md and every randomized test draws its
//! inputs from here, keyed by an explicit `u64` seed, so results are
//! reproducible bit-for-bit.
//!
//! The generators cover the paper's input classes:
//!
//! * **frequency vectors** for Huffman / Shannon–Fano / OBST workloads —
//!   uniform, Zipf (the textbook "English word frequency" shape the
//!   paper's introduction motivates), geometric (maximally skewed —
//!   deepest Huffman trees), and dyadic (Shannon–Fano is exactly optimal);
//! * **leaf-level patterns** for the Tree Construction Problem —
//!   monotone, bitonic, exactly-realizable general patterns (read off
//!   random full binary trees), and patterns with a controlled number of
//!   *fingers* for Theorem 7.3;
//! * **raw Monge matrices** for concave matrix multiplication;
//! * **strings** for linear-CFL recognition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG — the single entry point for randomness in the workspace.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------------
// Frequency vectors
// ---------------------------------------------------------------------

/// `n` integer-valued weights drawn uniformly from `1..=max`, unsorted.
pub fn uniform_weights(n: usize, max: u64, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(1..=max) as f64).collect()
}

/// `n` Zipf(`s`)-shaped weights: item `k` (1-based) gets weight
/// proportional to `k^-s`, scaled so the smallest weight is ≥ 1 and
/// rounded to integers (keeping `Cost` arithmetic exact). Unsorted order
/// is randomized by `seed`.
pub fn zipf_weights(n: usize, s: f64, seed: u64) -> Vec<f64> {
    assert!(n > 0, "zipf_weights needs n > 0");
    let scale = (n as f64).powf(s);
    let mut w: Vec<f64> = (1..=n)
        .map(|k| (scale / (k as f64).powf(s)).round().max(1.0))
        .collect();
    shuffle(&mut w, seed);
    w
}

/// `n` geometric weights `ratio^0, ratio^1, …` scaled to integers; with
/// `ratio` close to the golden-ratio conjugate these produce the deepest
/// possible Huffman trees (a left-justified chain — the paper's worst
/// case for the spine computation).
pub fn geometric_weights(n: usize, ratio: f64, seed: u64) -> Vec<f64> {
    assert!(ratio > 1.0, "ratio must exceed 1");
    // Cap the magnitude so downstream arithmetic stays exact in f64:
    // weighted path lengths sum n·depth terms of size ≤ cap, and all
    // partial sums must stay below 2^53.
    let cap = 2f64.powi(32);
    let mut w = Vec::with_capacity(n);
    let mut cur = 1.0f64;
    for _ in 0..n {
        w.push(cur.round());
        cur = (cur * ratio).min(cap);
    }
    shuffle(&mut w, seed);
    w
}

/// `n` dyadic weights (powers of two summing to a power of two when
/// `n` is a power of two). Shannon–Fano equals Huffman exactly on these.
pub fn dyadic_weights(n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two symbols");
    // Build levels of an arbitrary full tree: n-1 weights of exponentially
    // decreasing size plus a duplicate of the smallest, so the Kraft sum
    // of the ideal code lengths is exactly 1.
    let mut w: Vec<f64> = (0..n - 1)
        .map(|i| 2f64.powi((n - 1 - i).min(50) as i32))
        .collect();
    w.push(*w.last().expect("n >= 2"));
    w
}

/// Sorts weights ascending — the precondition of the paper's Section 3/5
/// algorithms (Lemma 3.1 requires monotone frequency vectors).
pub fn sorted(mut w: Vec<f64>) -> Vec<f64> {
    w.sort_by(|a, b| a.partial_cmp(b).expect("weights are never NaN"));
    w
}

fn shuffle(w: &mut [f64], seed: u64) {
    let mut r = rng(seed ^ 0x9e37_79b9_7f4a_7c15);
    // Fisher–Yates.
    for i in (1..w.len()).rev() {
        let j = r.gen_range(0..=i);
        w.swap(i, j);
    }
}

// ---------------------------------------------------------------------
// Leaf-level patterns
// ---------------------------------------------------------------------

/// Leaf depths, left to right, of a uniformly random *full* binary tree
/// with `n` leaves (every internal node has two children). Such patterns
/// are always exactly realizable (Kraft sum = 1), which makes them the
/// canonical positive test inputs for Section 7.
pub fn full_tree_pattern(n: usize, seed: u64) -> Vec<u32> {
    assert!(n >= 1);
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    // Iterative random splitting: stack of (leaf count, depth).
    let mut stack = vec![(n, 0u32)];
    while let Some((m, d)) = stack.pop() {
        if m == 1 {
            out.push(d);
        } else {
            let left = r.gen_range(1..m);
            // Push right first so left is emitted first (stack is LIFO).
            stack.push((m - left, d + 1));
            stack.push((left, d + 1));
        }
    }
    out
}

/// A feasible *monotone non-increasing* pattern with `n` leaves:
/// the sorted-descending leaf depths of a random full tree.
pub fn monotone_pattern(n: usize, seed: u64) -> Vec<u32> {
    let mut p = full_tree_pattern(n, seed);
    p.sort_unstable_by(|a, b| b.cmp(a));
    p
}

/// A feasible *bitonic* pattern (rises then falls): the depths of a random
/// full tree arranged greatest-first from both ends inward.
pub fn bitonic_pattern(n: usize, seed: u64) -> Vec<u32> {
    let mut depths = full_tree_pattern(n, seed);
    depths.sort_unstable(); // ascending
    let mut out = vec![0u32; n];
    let (mut lo, mut hi) = (0usize, n);
    // Deal ascending depths alternately to the two ends; the front gets
    // the small values ascending, the back gets them descending.
    let mut front = true;
    for d in depths {
        if front {
            out[lo] = d;
            lo += 1;
        } else {
            hi -= 1;
            out[hi] = d;
        }
        front = !front;
    }
    out
}

/// A feasible general pattern with roughly `humps` fingers: concatenates
/// depth sequences of random full trees, each shifted under a common
/// root chain. Realizable by construction (it is the leaf pattern of an
/// explicit tree).
pub fn pattern_with_fingers(humps: usize, leaves_per_hump: usize, seed: u64) -> Vec<u32> {
    assert!(humps >= 1 && leaves_per_hump >= 1);
    if humps == 1 {
        return full_tree_pattern(leaves_per_hump, seed);
    }
    // Build a left spine of `humps` nodes; hang a random full tree at each
    // spine position. The leaf pattern of the result is the concatenation
    // of the hump patterns shifted by their spine depth, which (for humps
    // of varying internal shape) yields many local maxima.
    let mut out = Vec::with_capacity(humps * leaves_per_hump);
    for h in 0..humps {
        // Spine node at depth h+1 for all but the last hump, which sits at
        // depth `humps` alongside the previous one (classic chain shape:
        // each spine node has one subtree child and one chain child).
        let depth = if h + 1 == humps {
            h as u32
        } else {
            (h + 1) as u32
        };
        let sub = full_tree_pattern(leaves_per_hump, seed.wrapping_add(h as u64));
        out.extend(sub.into_iter().map(|d| d + depth));
    }
    out
}

/// Counts the fingers (local maxima regions) of a pattern — the `m` of
/// Theorem 7.3. A plateau counts once.
pub fn count_fingers(pattern: &[u32]) -> usize {
    if pattern.is_empty() {
        return 0;
    }
    // Collapse plateaus, then count local maxima (including the ends when
    // they are maxima).
    let mut levels: Vec<u32> = Vec::with_capacity(pattern.len());
    for &l in pattern {
        if levels.last() != Some(&l) {
            levels.push(l);
        }
    }
    let m = levels.len();
    let mut fingers = 0;
    for i in 0..m {
        let left_ok = i == 0 || levels[i - 1] < levels[i];
        let right_ok = i + 1 == m || levels[i + 1] < levels[i];
        if left_ok && right_ok {
            fingers += 1;
        }
    }
    fingers
}

// ---------------------------------------------------------------------
// Monge matrices
// ---------------------------------------------------------------------

/// Entries of a random `rows × cols` *concave* (Monge) matrix: satisfies
/// `M[i][j] + M[k][l] ≤ M[i][l] + M[k][j]` for `i < k`, `j < l`.
///
/// Construction: `M[i][j] = r_i + c_j − Σ_{u≤i, v≤j} d[u][v]` with
/// `d ≥ 0`. The double cumulative sum is supermodular, so its negation is
/// submodular (= concave in the paper's sense); row/column offsets do not
/// affect the quadrangle condition.
pub fn random_monge(rows: usize, cols: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut r = rng(seed);
    let d: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| r.gen_range(0..100) as f64).collect())
        .collect();
    let row_off: Vec<f64> = (0..rows).map(|_| r.gen_range(0..1000) as f64).collect();
    let col_off: Vec<f64> = (0..cols).map(|_| r.gen_range(0..1000) as f64).collect();

    let mut m = vec![vec![0.0; cols]; rows];
    let mut cum = vec![0.0f64; cols];
    for i in 0..rows {
        let mut row_acc = 0.0;
        for j in 0..cols {
            row_acc += d[i][j];
            cum[j] += row_acc;
            m[i][j] = row_off[i] + col_off[j] - cum[j];
        }
    }
    m
}

/// Checks the quadrangle (Monge/concave) condition on raw entries —
/// quadratic in the matrix size; test-support only.
pub fn is_monge(m: &[Vec<f64>], tol: f64) -> bool {
    let rows = m.len();
    if rows == 0 {
        return true;
    }
    let cols = m[0].len();
    for i in 0..rows.saturating_sub(1) {
        for j in 0..cols.saturating_sub(1) {
            // Adjacent quadrangles suffice: the condition is closed under
            // composition of adjacent rows/columns.
            if m[i][j] + m[i + 1][j + 1] > m[i][j + 1] + m[i + 1][j] + tol {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------
// Strings for grammar recognition
// ---------------------------------------------------------------------

/// An even-length palindrome over `{a, b}` of length `2k`.
pub fn palindrome(k: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let half: Vec<u8> = (0..k)
        .map(|_| if r.gen_bool(0.5) { b'a' } else { b'b' })
        .collect();
    let mut s = half.clone();
    s.extend(half.iter().rev());
    s
}

/// The string `a^n b^n`.
pub fn an_bn(n: usize) -> Vec<u8> {
    let mut s = vec![b'a'; n];
    s.extend(std::iter::repeat_n(b'b', n));
    s
}

/// A uniformly random string over `alphabet`.
pub fn random_string(len: usize, alphabet: &[u8], seed: u64) -> Vec<u8> {
    assert!(!alphabet.is_empty());
    let mut r = rng(seed);
    (0..len)
        .map(|_| alphabet[r.gen_range(0..alphabet.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kraft(pattern: &[u32]) -> f64 {
        pattern.iter().map(|&l| 2f64.powi(-(l as i32))).sum()
    }

    #[test]
    fn uniform_weights_deterministic_and_in_range() {
        let a = uniform_weights(100, 50, 7);
        let b = uniform_weights(100, 50, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| (1.0..=50.0).contains(&w)));
    }

    #[test]
    fn zipf_weights_skewed() {
        let w = sorted(zipf_weights(64, 1.0, 3));
        assert_eq!(w.len(), 64);
        assert!(w[0] >= 1.0);
        assert!(
            w[63] > 10.0 * w[0],
            "Zipf should be skewed: {} vs {}",
            w[63],
            w[0]
        );
    }

    #[test]
    fn geometric_weights_grow() {
        let w = sorted(geometric_weights(20, 1.7, 1));
        assert!(w.windows(2).all(|p| p[0] <= p[1]));
        assert!(w[19] > w[0]);
    }

    #[test]
    fn dyadic_weights_kraft_exact() {
        for n in [2usize, 3, 5, 9] {
            let w = dyadic_weights(n);
            let total: f64 = w.iter().sum();
            // Ideal code lengths -log2(w/total) are integers ⇔ each w
            // divides the total as a power of two.
            for &x in &w {
                let ratio = total / x;
                assert_eq!(ratio, ratio.round(), "n={n}");
                assert_eq!((ratio as u64).count_ones(), 1, "n={n}");
            }
        }
    }

    #[test]
    fn full_tree_pattern_kraft_is_one() {
        for n in [1usize, 2, 3, 10, 100] {
            let p = full_tree_pattern(n, 42);
            assert_eq!(p.len(), n);
            assert!((kraft(&p) - 1.0).abs() < 1e-9, "n={n}: kraft={}", kraft(&p));
        }
    }

    #[test]
    fn monotone_pattern_is_monotone_and_feasible() {
        let p = monotone_pattern(50, 9);
        assert!(p.windows(2).all(|w| w[0] >= w[1]));
        assert!(kraft(&p) <= 1.0 + 1e-9);
    }

    #[test]
    fn bitonic_pattern_is_bitonic() {
        let p = bitonic_pattern(51, 5);
        assert_eq!(p.len(), 51);
        // Find the split: non-decreasing then non-increasing.
        let mut i = 0;
        while i + 1 < p.len() && p[i] <= p[i + 1] {
            i += 1;
        }
        assert!(
            p[i..].windows(2).all(|w| w[0] >= w[1]),
            "not bitonic: {:?}",
            p
        );
        assert!((kraft(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pattern_with_fingers_counts() {
        let p = pattern_with_fingers(8, 16, 11);
        assert_eq!(p.len(), 8 * 16);
        let m = count_fingers(&p);
        assert!(m >= 2, "expected several fingers, got {m}");
        assert!((kraft(&p) - 1.0).abs() < 1e-9, "kraft={}", kraft(&p));
    }

    #[test]
    fn count_fingers_basics() {
        assert_eq!(count_fingers(&[]), 0);
        assert_eq!(count_fingers(&[3]), 1);
        assert_eq!(count_fingers(&[1, 2, 3]), 1);
        assert_eq!(count_fingers(&[3, 2, 1]), 1);
        assert_eq!(count_fingers(&[1, 3, 1, 3, 1]), 2);
        assert_eq!(count_fingers(&[2, 2, 2]), 1);
        assert_eq!(count_fingers(&[1, 3, 3, 1, 4, 1]), 2);
    }

    #[test]
    fn random_monge_is_monge() {
        for seed in 0..5 {
            let m = random_monge(17, 23, seed);
            assert!(is_monge(&m, 1e-9), "seed={seed}");
        }
    }

    #[test]
    fn is_monge_rejects_non_monge() {
        let m = vec![vec![0.0, 10.0], vec![0.0, 0.0]];
        // 0 + 0 > 10 + 0 is false; craft a violation:
        let bad = vec![vec![0.0, 0.0], vec![0.0, 10.0]];
        assert!(is_monge(&m, 1e-9));
        assert!(!is_monge(&bad, 1e-9));
    }

    #[test]
    fn strings_shapes() {
        let p = palindrome(10, 3);
        assert_eq!(p.len(), 20);
        assert!(p.iter().eq(p.iter().rev()));
        let s = an_bn(4);
        assert_eq!(s, b"aaaabbbb");
        let r = random_string(30, b"abc", 1);
        assert!(r.iter().all(|c| b"abc".contains(c)));
    }
}
