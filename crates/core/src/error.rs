//! Workspace-wide error type.
//!
//! The algorithms in this workspace fail in a small number of structured
//! ways — an infeasible leaf pattern (Kraft sum exceeds 1), an input that
//! violates a documented precondition (unsorted weights where monotone
//! weights are required), a malformed grammar. Each gets a variant so
//! callers can react programmatically.

use std::fmt;

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by `partree` algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A leaf-level pattern admits no single ordered binary tree.
    ///
    /// For monotone/bitonic patterns this means the Kraft sum exceeds 1
    /// (Lemmas 7.1, 7.2); for general patterns it means Finger-Reduction
    /// reached an infeasible residual pattern (Lemma 7.3). `trees_needed`
    /// reports the size of the minimal forest that *does* realize the
    /// pattern, when known (Theorem 7.2's "minimum number of trees").
    InfeasiblePattern {
        /// Minimal number of trees realizing the pattern, if computed.
        trees_needed: Option<usize>,
    },

    /// An input violated a documented precondition.
    InvalidInput(String),

    /// A grammar was rejected (empty production set, unknown symbol,
    /// a rule that is not linear, …).
    InvalidGrammar(String),

    /// An internal invariant was violated — a bug in this library.
    Internal(String),
}

impl Error {
    /// Convenience constructor for precondition violations.
    pub fn invalid(msg: impl Into<String>) -> Error {
        Error::InvalidInput(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InfeasiblePattern {
                trees_needed: Some(k),
            } => {
                write!(
                    f,
                    "leaf pattern is infeasible as a single tree (minimal forest size {k})"
                )
            }
            Error::InfeasiblePattern { trees_needed: None } => {
                write!(f, "leaf pattern is infeasible as a single tree")
            }
            Error::InvalidInput(m) => write!(f, "invalid input: {m}"),
            Error::InvalidGrammar(m) => write!(f, "invalid grammar: {m}"),
            Error::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(Error::InfeasiblePattern {
            trees_needed: Some(3)
        }
        .to_string()
        .contains("forest size 3"));
        assert!(Error::InfeasiblePattern { trees_needed: None }
            .to_string()
            .contains("infeasible"));
        assert!(Error::invalid("weights must be sorted")
            .to_string()
            .contains("sorted"));
        assert!(Error::InvalidGrammar("no productions".into())
            .to_string()
            .contains("grammar"));
        assert!(Error::Internal("oops".into())
            .to_string()
            .contains("invariant"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::invalid("x"));
    }
}
