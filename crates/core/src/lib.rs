//! # partree-core
//!
//! Shared foundation for the `partree` workspace, a reproduction of
//! *Constructing Trees in Parallel* (Atallah, Kosaraju, Larmore, Miller,
//! Teng; SPAA 1989).
//!
//! This crate holds the types every other crate agrees on:
//!
//! * [`Cost`] — the carrier of the `(min, +)` closed semiring the paper
//!   works in (rationals extended with `+∞`),
//! * [`Error`] / [`Result`] — the workspace error type,
//! * [`gen`] — deterministic workload generators used by tests, examples
//!   and the benchmark harness (weight distributions, leaf-level
//!   patterns, strings for grammar recognition).
//!
//! Nothing in here is parallel; this is the vocabulary layer.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cost;
pub mod error;
pub mod gen;

pub use cost::Cost;
pub use error::{Error, Result};
