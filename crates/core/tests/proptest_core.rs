//! Property tests: the `(min, +)` closed-semiring laws on [`Cost`] —
//! the algebra every dynamic program in the workspace computes in.

use partree_core::cost::PrefixWeights;
use partree_core::Cost;
use proptest::prelude::*;

/// Strategy: a Cost that is finite (integer-valued) or `+∞`.
fn cost() -> impl Strategy<Value = Cost> {
    prop_oneof![
        8 => (0u32..1_000_000).prop_map(Cost::from),
        1 => Just(Cost::INFINITY),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `min` is associative, commutative, idempotent, with identity +∞.
    #[test]
    fn min_is_a_commutative_idempotent_monoid(a in cost(), b in cost(), c in cost()) {
        prop_assert_eq!(a.min(b).min(c), a.min(b.min(c)));
        prop_assert_eq!(a.min(b), b.min(a));
        prop_assert_eq!(a.min(a), a);
        prop_assert_eq!(a.min(Cost::INFINITY), a);
    }

    /// `+` is associative, commutative, with identity 0 and absorbing
    /// element +∞ (the semiring's multiplication).
    #[test]
    fn plus_is_a_commutative_monoid_with_absorption(a in cost(), b in cost(), c in cost()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + Cost::ZERO, a);
        prop_assert_eq!(a + Cost::INFINITY, Cost::INFINITY);
    }

    /// Distributivity: `a + min(b, c) = min(a+b, a+c)` — what makes
    /// `(min,+)` matrix products associative, hence repeated squaring
    /// valid.
    #[test]
    fn plus_distributes_over_min(a in cost(), b in cost(), c in cost()) {
        prop_assert_eq!(a + b.min(c), (a + b).min(a + c));
    }

    /// The total order is compatible: adding a constant preserves it,
    /// and `min` picks the smaller.
    #[test]
    fn order_compatibility(a in cost(), b in cost(), c in cost()) {
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
        prop_assert!(a.min(b) <= a && a.min(b) <= b);
    }

    /// Prefix weights: `S[i,j] + S[j,k] = S[i,k]` (interval additivity),
    /// the identity every DP's weight terms rely on.
    #[test]
    fn prefix_weight_additivity(ws in prop::collection::vec(0u32..10_000, 1..64)) {
        let w: Vec<f64> = ws.iter().map(|&x| f64::from(x)).collect();
        let pw = PrefixWeights::new(&w);
        let n = w.len();
        for (i, j, k) in [(0, n / 2, n), (0, 0, n), (n / 3, n / 2, (n / 2 + n) / 2)] {
            prop_assert_eq!(pw.sum(i, j) + pw.sum(j, k), pw.sum(i, k));
        }
        prop_assert_eq!(pw.sum(0, n), pw.total());
    }
}
