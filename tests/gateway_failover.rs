//! Integration: the replica gateway under fire — three codec replicas
//! behind one router, concurrent clients, one replica slowed to force
//! hedging and another killed mid-run to force retries and failover.
//! Every response that comes back must be byte-identical to a direct
//! single-service run, ≥99% of in-deadline requests must succeed, and
//! the router's own metrics must show the resilience machinery engaged
//! (retries, winning hedges, the killed replica's breaker opening).

use partree::gateway::{Gateway, GatewayConfig};
use partree::service::frame::{Histogram, Request, Response};
use partree::service::net::Server;
use partree::service::server::{Service, ServiceConfig};
use partree::service::FamilyId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic xorshift payload over an `n`-symbol alphabet, led by
/// one of each symbol so every histogram count is nonzero.
fn payload(n: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut out: Vec<u8> = (0..n as u16).map(|sym| sym as u8).collect();
    out.extend((0..len).map(|_| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % n as u64) as u8
    }));
    out
}

/// A workload item pre-answered on a direct (in-process, no gateway)
/// service: the ground truth for bit-identity.
struct Expected {
    hist: Histogram,
    payload: Vec<u8>,
    bit_len: u64,
    data: Vec<u8>,
}

fn build_expected() -> Vec<Expected> {
    let direct = Service::start(ServiceConfig::default());
    let out = (0..20u64)
        .map(|i| {
            let n = [2usize, 6, 16, 64, 256][i as usize % 5];
            let msg = payload(n, i, 48 + (i as usize % 96));
            let hist = Histogram::of_payload(n, &msg).unwrap();
            match direct.submit(Request::Encode {
                family: FamilyId::Huffman,
                histogram: hist.clone(),
                payload: msg.clone(),
            }) {
                Response::Encoded { bit_len, data } => Expected {
                    hist,
                    payload: msg,
                    bit_len,
                    data,
                },
                other => panic!("direct encode {i} failed: {other:?}"),
            }
        })
        .collect();
    direct.shutdown();
    out
}

#[test]
fn failover_under_load_stays_bit_identical() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 60;
    /// Pacing between a client's requests so the load phase spans the
    /// mid-run kill rather than finishing before it.
    const PACE: Duration = Duration::from_millis(3);

    let expected = Arc::new(build_expected());

    let mut servers: Vec<Option<Server>> = (0..3)
        .map(|_| {
            Some(Server::bind(Service::start(ServiceConfig::default()), "127.0.0.1:0").unwrap())
        })
        .collect();
    let addrs = servers.iter().map(|s| s.as_ref().unwrap().addr()).collect();

    let mut cfg = GatewayConfig::new(addrs);
    cfg.deadline = Duration::from_secs(2);
    cfg.probe_interval = Duration::from_millis(25);
    cfg.breaker.open_cooldown = Duration::from_millis(200);
    let gw = Arc::new(Gateway::start(cfg));

    // Warm pass: primes every replica's codebook cache and the
    // gateway's latency EWMA, and checks bit-identity on a calm fleet.
    for (i, e) in expected.iter().enumerate() {
        let (bits, data) = gw.encode(&e.hist, &e.payload).unwrap();
        assert_eq!(
            (bits, &data),
            (e.bit_len, &e.data),
            "warm {i}: gateway differs from direct run"
        );
    }

    // Slow replica 2 past the hedge threshold for the first half of the
    // load, so hedges fire and win while the traffic is live.
    servers[2].as_ref().unwrap().faults().set_delay_ms(120);

    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let gw = Arc::clone(&gw);
            let expected = Arc::clone(&expected);
            let ok = Arc::clone(&ok);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                for r in 0..PER_CLIENT {
                    std::thread::sleep(PACE);
                    let e = &expected[(c * 5 + r) % expected.len()];
                    match gw.encode(&e.hist, &e.payload) {
                        Ok((bits, data)) => {
                            assert_eq!(
                                (bits, &data),
                                (e.bit_len, &e.data),
                                "client {c} req {r}: bytes differ from direct run"
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    // Kill replica 1 while the clients are mid-flight; in-pool
    // connections to it die and the requests must retry elsewhere.
    std::thread::sleep(Duration::from_millis(120));
    servers[1].take().unwrap().shutdown().unwrap();
    // Un-slow replica 2 for the tail so the fleet recovers fully.
    std::thread::sleep(Duration::from_millis(150));
    servers[2].as_ref().unwrap().faults().set_delay_ms(0);

    for w in workers {
        w.join().unwrap();
    }

    let ok = ok.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let total = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(ok + shed, total);
    assert!(
        shed * 100 <= total,
        "failover success rate below 99%: {ok}/{total}"
    );

    let snap = gw.snapshot();
    assert!(snap.retries > 0, "kill produced no retries: {snap:?}");
    assert!(
        snap.hedges_issued > 0 && snap.hedges_won > 0,
        "slow replica produced no winning hedges: {snap:?}"
    );
    assert!(
        snap.replicas[1].breaker_opened > 0,
        "killed replica's breaker never opened: {snap:?}"
    );
    assert_eq!(snap.replicas.len(), 3);

    let gw = Arc::try_unwrap(gw).unwrap_or_else(|_| panic!("gateway still shared"));
    gw.shutdown();
    for s in servers.into_iter().flatten() {
        s.shutdown().unwrap();
    }
}

#[test]
fn gateway_stats_and_drain_roundtrip() {
    let servers: Vec<Server> = (0..2)
        .map(|_| Server::bind(Service::start(ServiceConfig::default()), "127.0.0.1:0").unwrap())
        .collect();
    let cfg = GatewayConfig::new(servers.iter().map(|s| s.addr()).collect());
    let gw = Gateway::start(cfg);

    let msg = payload(16, 7, 64);
    let hist = Histogram::of_payload(16, &msg).unwrap();
    let (bit_len, data) = gw.encode(&hist, &msg).unwrap();
    assert_eq!(gw.decode(&hist, bit_len, &data).unwrap(), msg);

    // Stats answered by the router itself: valid JSON-ish shape with
    // one entry per replica.
    match gw.request(&Request::Stats).unwrap() {
        Response::Stats { json } => {
            assert!(json.contains("\"replicas\":["), "{json}");
            assert!(json.matches("\"breaker\":").count() == 2, "{json}");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Drain flips the router into shedding mode: control plane still
    // answers, data plane sheds with Busy.
    assert!(matches!(
        gw.request(&Request::Drain).unwrap(),
        Response::DrainOk
    ));
    match gw.request(&Request::Ping).unwrap() {
        Response::Pong { draining } => assert!(draining),
        other => panic!("expected pong, got {other:?}"),
    }
    assert!(matches!(
        gw.request(&Request::Encode {
            family: FamilyId::Huffman,
            histogram: hist.clone(),
            payload: msg.clone(),
        })
        .unwrap(),
        Response::Busy
    ));

    gw.shutdown();
    for s in servers {
        s.shutdown().unwrap();
    }
}
