//! Integration: determinism of the parallel algorithms — same inputs
//! give bit-identical outputs run to run (ties broken by smallest
//! index, as the paper's `Cut` definition specifies), regardless of
//! scheduling.

use partree::core::gen;
use partree::huffman::parallel::huffman_parallel;
use partree::monge::cut::concave_mul;
use partree::monge::dense::Matrix;
use partree::obst::approx::approx_optimal_bst;
use partree::obst::ObstInstance;
use partree::pram::model::with_threads;
use partree::trees::finger::build_general;

#[test]
fn concave_mul_is_deterministic_across_runs_and_pools() {
    let a = Matrix::from_rows(&gen::random_monge(120, 95, 3));
    let b = Matrix::from_rows(&gen::random_monge(95, 130, 4));
    let baseline = concave_mul(&a, &b, None);
    for threads in [1usize, 2, 4] {
        for _ in 0..3 {
            let again = with_threads(threads, || concave_mul(&a, &b, None));
            assert_eq!(again.cut, baseline.cut, "threads={threads}");
            assert!(again.values.approx_eq(&baseline.values, 0.0));
        }
    }
}

#[test]
fn huffman_parallel_outputs_are_stable() {
    let w = gen::zipf_weights(80, 1.1, 9);
    let first = huffman_parallel(&w).unwrap();
    for threads in [1usize, 3] {
        let again = with_threads(threads, || huffman_parallel(&w).unwrap());
        assert_eq!(again.lengths, first.lengths, "threads={threads}");
        assert_eq!(again.cost(), first.cost());
        assert_eq!(again.tree.leaf_levels(), first.tree.leaf_levels());
    }
}

#[test]
fn finger_reduction_is_stable() {
    let p = gen::pattern_with_fingers(16, 32, 5);
    let first = build_general(&p).unwrap();
    for _ in 0..3 {
        let again = build_general(&p).unwrap();
        assert_eq!(again.rounds, first.rounds);
        assert_eq!(again.tree.leaf_levels(), first.tree.leaf_levels());
    }
}

#[test]
fn approx_obst_is_stable() {
    let inst = ObstInstance::random(48, 200, 11);
    let first = approx_optimal_bst(&inst, 0.02).unwrap();
    for threads in [1usize, 2] {
        let again = with_threads(threads, || approx_optimal_bst(&inst, 0.02).unwrap());
        assert_eq!(again.cost, first.cost, "threads={threads}");
        assert_eq!(again.tree, first.tree);
    }
}
