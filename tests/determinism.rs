//! Integration: determinism of the parallel algorithms — same inputs
//! give bit-identical outputs run to run (ties broken by smallest
//! index, as the paper's `Cut` definition specifies), regardless of
//! scheduling. Every pipeline is exercised under 1, 2, and 8 worker
//! threads; the cost tracer's span trees must also be identical,
//! because depth is counted in synchronous PRAM rounds rather than
//! wall-clock scheduling.

use partree::core::gen;
use partree::huffman::parallel::{huffman_parallel, huffman_parallel_cost_traced};
use partree::lcfl::grammar::even_palindromes;
use partree::lcfl::{parse_divide, recognize_divide};
use partree::monge::cut::concave_mul;
use partree::monge::dense::Matrix;
use partree::monge::smawk::smawk_mul;
use partree::obst::approx::approx_optimal_bst;
use partree::obst::ObstInstance;
use partree::pram::model::with_threads;
use partree::pram::CostTracer;
use partree::service::frame::Histogram;
use partree::service::CodebookCache;
use partree::service::FamilyId;
use partree::trees::finger::build_general;

const POOLS: [usize; 3] = [1, 2, 8];

#[test]
fn concave_mul_is_deterministic_across_runs_and_pools() {
    let a = Matrix::from_rows(&gen::random_monge(120, 95, 3));
    let b = Matrix::from_rows(&gen::random_monge(95, 130, 4));
    let baseline = concave_mul(&a, &b, &CostTracer::disabled());
    for threads in POOLS {
        for _ in 0..3 {
            let again = with_threads(threads, || concave_mul(&a, &b, &CostTracer::disabled()));
            assert_eq!(again.cut, baseline.cut, "threads={threads}");
            assert!(again.values.approx_eq(&baseline.values, 0.0));
        }
    }
}

#[test]
fn smawk_mul_is_stable_across_pools_and_runs() {
    // SMAWK-based (min,+) multiplication on the persistent executor:
    // racing steals may move lane blocks between workers, but the value
    // matrix must not wobble by a bit.
    let a = Matrix::from_rows(&gen::random_monge(100, 80, 7));
    let b = Matrix::from_rows(&gen::random_monge(80, 110, 8));
    let baseline = smawk_mul(&a, &b, &CostTracer::disabled());
    for threads in POOLS {
        for _ in 0..3 {
            let again = with_threads(threads, || smawk_mul(&a, &b, &CostTracer::disabled()));
            assert!(again.approx_eq(&baseline, 0.0), "threads={threads}");
        }
    }
}

#[test]
fn f64_reductions_are_bit_identical_under_racing_steals() {
    // Non-associative floating-point folds are the sharpest determinism
    // probe: the shim folds fixed 256-element blocks in index order on
    // the executor, so neither the pool width nor which worker stole
    // which block may perturb rounding.
    use rayon::prelude::*;
    let xs: Vec<f64> = (1..60_000).map(|i| 1.0 / (i as f64).sqrt()).collect();
    let baseline: f64 = with_threads(1, || xs.par_iter().copied().sum());
    for threads in POOLS {
        for _ in 0..5 {
            let sum: f64 = with_threads(threads, || xs.par_iter().copied().sum());
            assert_eq!(sum.to_bits(), baseline.to_bits(), "threads={threads}");
        }
    }
}

#[test]
fn huffman_parallel_outputs_are_stable() {
    let w = gen::zipf_weights(80, 1.1, 9);
    let first = huffman_parallel(&w).unwrap();
    for threads in POOLS {
        let again = with_threads(threads, || huffman_parallel(&w).unwrap());
        assert_eq!(again.lengths, first.lengths, "threads={threads}");
        assert_eq!(again.cost(), first.cost());
        assert_eq!(again.tree.leaf_levels(), first.tree.leaf_levels());
    }
}

#[test]
fn finger_reduction_is_stable() {
    let p = gen::pattern_with_fingers(16, 32, 5);
    let first = build_general(&p).unwrap();
    for threads in POOLS {
        let again = with_threads(threads, || build_general(&p).unwrap());
        assert_eq!(again.rounds, first.rounds, "threads={threads}");
        assert_eq!(again.tree.leaf_levels(), first.tree.leaf_levels());
    }
}

#[test]
fn approx_obst_is_stable() {
    let inst = ObstInstance::random(48, 200, 11);
    let first = approx_optimal_bst(&inst, 0.02).unwrap();
    for threads in POOLS {
        let again = with_threads(threads, || approx_optimal_bst(&inst, 0.02).unwrap());
        assert_eq!(again.cost, first.cost, "threads={threads}");
        assert_eq!(again.tree, first.tree);
    }
}

#[test]
fn lcfl_recognizer_and_parser_are_stable() {
    let g = even_palindromes();
    let good = gen::palindrome(40, 3);
    let mut bad = good.clone();
    bad[0] = if bad[0] == b'a' { b'b' } else { b'a' };
    let first = parse_divide(&g, &good).expect("accepted");
    for threads in POOLS {
        let (acc, rej, d) = with_threads(threads, || {
            (
                recognize_divide(&g, &good),
                recognize_divide(&g, &bad),
                parse_divide(&g, &good).expect("accepted"),
            )
        });
        assert!(acc, "threads={threads}");
        assert!(!rej, "threads={threads}");
        assert_eq!(d.rules, first.rules, "threads={threads}");
    }
}

#[test]
fn service_codebooks_are_bit_identical_across_pools() {
    // The service's cache must hand back the same canonical codebook
    // whatever pool width built it — for every code family: same code
    // lengths, same encoded bytes for a probe payload. This is what
    // makes first-insert-wins sound for racing misses.
    let hist = Histogram::new(vec![45, 13, 12, 16, 9, 5, 31, 2, 2, 8]).unwrap();
    let probe: Vec<u8> = (0..64).map(|i| (i * 7 % 10) as u8).collect();

    for family in FamilyId::ALL {
        let baseline = {
            let cache = CodebookCache::new(4, 16);
            let book = cache
                .get_or_build(&hist, family, &CostTracer::disabled())
                .unwrap();
            (book.lengths.clone(), book.encode(&probe).unwrap())
        };
        for threads in POOLS {
            let (lengths, encoded) = with_threads(threads, || {
                let cache = CodebookCache::new(4, 16);
                let book = cache
                    .get_or_build(&hist, family, &CostTracer::disabled())
                    .unwrap();
                (book.lengths.clone(), book.encode(&probe).unwrap())
            });
            assert_eq!(lengths, baseline.0, "{family} threads={threads}");
            assert_eq!(encoded, baseline.1, "{family} threads={threads}");
        }
    }
}

#[test]
fn racing_cache_misses_converge_on_one_codebook() {
    // Eight threads hit a cold cache with the same histogram at once.
    // Every thread may build, but construction is deterministic, so
    // all of them must return bit-identical codebooks, and the cache
    // must end up with a single resident entry.
    type Probe = (Vec<u32>, (Vec<u8>, u64));
    let hist = Histogram::new((1..=24).map(|i| i * i).collect()).unwrap();
    let probe: Vec<u8> = (0..48).map(|i| (i % 24) as u8).collect();
    for threads in POOLS {
        let cache = CodebookCache::new(8, 32);
        let results: Vec<Probe> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = &cache;
                    let hist = &hist;
                    let probe = &probe;
                    s.spawn(move || {
                        let book = with_threads(threads, || {
                            cache
                                .get_or_build(hist, FamilyId::Huffman, &CostTracer::disabled())
                                .unwrap()
                        });
                        (book.lengths.clone(), book.encode(probe).unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results[1..] {
            assert_eq!(r.0, results[0].0, "threads={threads}: lengths diverged");
            assert_eq!(r.1, results[0].1, "threads={threads}: encodings diverged");
        }
        assert_eq!(cache.len(), 1, "threads={threads}: duplicate entries");
        assert!(cache.misses() >= 1, "threads={threads}");
        // Hits + misses account for all eight lookups.
        assert_eq!(cache.hits() + cache.misses(), 8, "threads={threads}");
    }
}

#[test]
fn delta_patches_are_bit_identical_across_pools() {
    // The delta engine's patch-or-rebuild decision and the lengths it
    // serves must not depend on pool width: both the exact two-queue
    // patch verification and the fallback construction are
    // deterministic, so a drifted codebook patched under one thread
    // is byte-for-byte the codebook rebuilt under eight.
    use partree::delta::{apply, DeltaConfig};
    // 24 symbols fits every family (the choosable-edge DP caps at 32).
    let base: Vec<u32> = (1..=24u32).map(|i| i * i + i).collect();
    let cfg = DeltaConfig::default();
    for family in FamilyId::ALL {
        let n = base.len();
        let base = &base[..];
        let base_lengths = {
            let h = Histogram::new(base.to_vec()).unwrap();
            let cache = CodebookCache::new(1, 4);
            cache
                .get_or_build(&h, family, &CostTracer::disabled())
                .unwrap()
                .lengths
                .clone()
        };
        let mut drifted = base.to_vec();
        drifted[0] += drifted[0] / 2;
        drifted[n - 1] += 1;
        let baseline = apply(family, base, &base_lengths, &drifted, &cfg).unwrap();
        for threads in POOLS {
            let again = with_threads(threads, || {
                apply(family, base, &base_lengths, &drifted, &cfg).unwrap()
            });
            assert_eq!(again.path, baseline.path, "{family} threads={threads}");
            assert_eq!(
                again.lengths, baseline.lengths,
                "{family} threads={threads}"
            );
        }
    }
}

#[test]
fn delta_responses_are_bit_identical_across_transports() {
    // The wire answers a drifted encode must not depend on which
    // transport engine served it: a blocking thread-per-connection
    // replica and an epoll reactor replica patch the same base with
    // the same deltas into the same bytes — and both match a direct
    // from-scratch encode of the drifted histogram.
    use partree::service::net::{Server, Transport};
    use partree::service::server::{Service, ServiceConfig};
    use partree::service::Client;

    let base_counts = vec![40u32, 20, 10, 5];
    let deltas = [(0u16, 8i32), (2, -3)];
    let drifted = Histogram::new(vec![48, 20, 7, 5]).unwrap();
    let payload: Vec<u8> = (0..96).map(|i| (i % 4) as u8).collect();

    let expected = {
        let svc = Service::start(ServiceConfig::default());
        let resp = svc.submit(partree::service::frame::Request::Encode {
            family: FamilyId::Huffman,
            histogram: drifted.clone(),
            payload: payload.clone(),
        });
        svc.shutdown();
        match resp {
            partree::service::frame::Response::Encoded { bit_len, data } => (bit_len, data),
            other => panic!("direct encode failed: {other:?}"),
        }
    };

    for transport in [Transport::Blocking, Transport::Reactor] {
        let server = Server::bind_with(
            Service::start(ServiceConfig::default()),
            "127.0.0.1:0",
            transport,
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let base = Histogram::new(base_counts.clone()).unwrap();
        client.encode(&base, &payload).unwrap();
        let base_key = FamilyId::Huffman.tagged_key(base.hash64());
        let (path, bit_len, data) = client
            .encode_delta(FamilyId::Huffman, base_key, &deltas, &payload)
            .unwrap();
        assert_eq!(path, 0, "{transport:?}: bounded drift patches");
        assert_eq!(
            (bit_len, &data),
            (expected.0, &expected.1),
            "{transport:?}: patched bytes == from-scratch bytes"
        );
        let back = client
            .decode_delta(FamilyId::Huffman, base_key, &deltas, bit_len, &data)
            .unwrap();
        assert_eq!(back, payload, "{transport:?}");
        server.shutdown().unwrap();
    }
}

#[test]
fn tracer_span_trees_are_pool_independent() {
    // Depth is counted in synchronous rounds, so the whole span tree —
    // names, nesting, work, depth — must not depend on how many OS
    // threads rayon actually used.
    let w = gen::zipf_weights(96, 1.1, 7);
    let baseline = {
        let t = CostTracer::named("huffman");
        let _ = huffman_parallel_cost_traced(&w, &t).unwrap();
        t.snapshot()
    };
    for threads in POOLS {
        let snap = with_threads(threads, || {
            let t = CostTracer::named("huffman");
            let _ = huffman_parallel_cost_traced(&w, &t).unwrap();
            t.snapshot()
        });
        assert_eq!(snap, baseline, "threads={threads}");
    }
}
