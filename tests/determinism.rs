//! Integration: determinism of the parallel algorithms — same inputs
//! give bit-identical outputs run to run (ties broken by smallest
//! index, as the paper's `Cut` definition specifies), regardless of
//! scheduling. Every pipeline is exercised under 1, 2, and 8 worker
//! threads; the cost tracer's span trees must also be identical,
//! because depth is counted in synchronous PRAM rounds rather than
//! wall-clock scheduling.

use partree::core::gen;
use partree::huffman::parallel::{huffman_parallel, huffman_parallel_cost_traced};
use partree::lcfl::grammar::even_palindromes;
use partree::lcfl::{parse_divide, recognize_divide};
use partree::monge::cut::concave_mul;
use partree::monge::dense::Matrix;
use partree::obst::approx::approx_optimal_bst;
use partree::obst::ObstInstance;
use partree::pram::model::with_threads;
use partree::pram::CostTracer;
use partree::trees::finger::build_general;

const POOLS: [usize; 3] = [1, 2, 8];

#[test]
fn concave_mul_is_deterministic_across_runs_and_pools() {
    let a = Matrix::from_rows(&gen::random_monge(120, 95, 3));
    let b = Matrix::from_rows(&gen::random_monge(95, 130, 4));
    let baseline = concave_mul(&a, &b, &CostTracer::disabled());
    for threads in POOLS {
        for _ in 0..3 {
            let again = with_threads(threads, || concave_mul(&a, &b, &CostTracer::disabled()));
            assert_eq!(again.cut, baseline.cut, "threads={threads}");
            assert!(again.values.approx_eq(&baseline.values, 0.0));
        }
    }
}

#[test]
fn huffman_parallel_outputs_are_stable() {
    let w = gen::zipf_weights(80, 1.1, 9);
    let first = huffman_parallel(&w).unwrap();
    for threads in POOLS {
        let again = with_threads(threads, || huffman_parallel(&w).unwrap());
        assert_eq!(again.lengths, first.lengths, "threads={threads}");
        assert_eq!(again.cost(), first.cost());
        assert_eq!(again.tree.leaf_levels(), first.tree.leaf_levels());
    }
}

#[test]
fn finger_reduction_is_stable() {
    let p = gen::pattern_with_fingers(16, 32, 5);
    let first = build_general(&p).unwrap();
    for threads in POOLS {
        let again = with_threads(threads, || build_general(&p).unwrap());
        assert_eq!(again.rounds, first.rounds, "threads={threads}");
        assert_eq!(again.tree.leaf_levels(), first.tree.leaf_levels());
    }
}

#[test]
fn approx_obst_is_stable() {
    let inst = ObstInstance::random(48, 200, 11);
    let first = approx_optimal_bst(&inst, 0.02).unwrap();
    for threads in POOLS {
        let again = with_threads(threads, || approx_optimal_bst(&inst, 0.02).unwrap());
        assert_eq!(again.cost, first.cost, "threads={threads}");
        assert_eq!(again.tree, first.tree);
    }
}

#[test]
fn lcfl_recognizer_and_parser_are_stable() {
    let g = even_palindromes();
    let good = gen::palindrome(40, 3);
    let mut bad = good.clone();
    bad[0] = if bad[0] == b'a' { b'b' } else { b'a' };
    let first = parse_divide(&g, &good).expect("accepted");
    for threads in POOLS {
        let (acc, rej, d) = with_threads(threads, || {
            (
                recognize_divide(&g, &good),
                recognize_divide(&g, &bad),
                parse_divide(&g, &good).expect("accepted"),
            )
        });
        assert!(acc, "threads={threads}");
        assert!(!rej, "threads={threads}");
        assert_eq!(d.rules, first.rules, "threads={threads}");
    }
}

#[test]
fn tracer_span_trees_are_pool_independent() {
    // Depth is counted in synchronous rounds, so the whole span tree —
    // names, nesting, work, depth — must not depend on how many OS
    // threads rayon actually used.
    let w = gen::zipf_weights(96, 1.1, 7);
    let baseline = {
        let t = CostTracer::named("huffman");
        let _ = huffman_parallel_cost_traced(&w, &t).unwrap();
        t.snapshot()
    };
    for threads in POOLS {
        let snap = with_threads(threads, || {
            let t = CostTracer::named("huffman");
            let _ = huffman_parallel_cost_traced(&w, &t).unwrap();
            t.snapshot()
        });
        assert_eq!(snap, baseline, "threads={threads}");
    }
}
