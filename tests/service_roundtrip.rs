//! Integration: the codec service under concurrent load — 1000+
//! encode/decode roundtrips over loopback TCP across 8+ distinct
//! alphabets, all byte-identical, with the codebook cache visibly
//! amortizing construction; plus backpressure (`Busy`) when the
//! bounded queue saturates, and clean shutdowns throughout.

use partree::service::frame::{Histogram, Request, Response};
use partree::service::net::Server;
use partree::service::server::{Service, ServiceConfig};
use partree::service::Client;
use partree::service::FamilyId;

/// Ten distinct alphabets, sizes 2..=256, flat and skewed shapes.
fn alphabets() -> Vec<Histogram> {
    let fib = {
        let mut f = vec![1u32, 1];
        for i in 2..16 {
            let next = f[i - 1] + f[i - 2];
            f.push(next);
        }
        f
    };
    vec![
        Histogram::new(vec![45, 13, 12, 16, 9, 5]).unwrap(),
        Histogram::new(vec![1, 1]).unwrap(),
        Histogram::new(vec![1; 8]).unwrap(),
        Histogram::new(vec![1; 256]).unwrap(),
        Histogram::new((1..=32).collect()).unwrap(),
        Histogram::new((0..10).map(|i| 1u32 << i).collect()).unwrap(),
        Histogram::new(fib).unwrap(),
        Histogram::new(vec![100, 1, 1, 1, 1]).unwrap(),
        Histogram::new(vec![2, 3, 5, 7, 11, 13, 17]).unwrap(),
        Histogram::new((0..64).map(|i| 1 + (i % 5)).collect()).unwrap(),
    ]
}

/// Deterministic xorshift payload over an `n`-symbol alphabet.
fn payload(n: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % n as u64) as u8
        })
        .collect()
}

#[test]
fn thousand_concurrent_roundtrips_over_tcp() {
    const CLIENTS: usize = 10;
    const PER_CLIENT: usize = 100; // 10 × 100 = 1000 encode+decode pairs

    let server = Server::bind(
        Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 4096,
            ..ServiceConfig::default()
        }),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr();
    let hists = alphabets();
    assert!(hists.len() >= 8);

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let hists = &hists;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for r in 0..PER_CLIENT {
                    let hist = &hists[(c + r) % hists.len()];
                    let n = hist.counts().len();
                    let msg = payload(n, (c * PER_CLIENT + r) as u64, 16 + r % 80);
                    let (bit_len, data) = client.encode(hist, &msg).unwrap();
                    let back = client.decode(hist, bit_len, &data).unwrap();
                    assert_eq!(back, msg, "client {c} request {r}: lossy roundtrip");
                }
            });
        }
    });

    let stats = server.service().metrics();
    let total = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(stats.encoded, total);
    assert_eq!(stats.decoded, total);
    assert!(
        stats.cache_hits > 0,
        "2000 requests over 10 alphabets must hit the cache"
    );
    assert!(stats.work > 0 && stats.depth > 0, "tracer exported no cost");
    assert_eq!(stats.busy, 0);
    assert_eq!(server.shutdown().unwrap(), 0, "no queued jobs dropped");
}

#[test]
fn saturated_queue_sheds_load_with_busy() {
    // workers: 0 — nothing drains, so the queue fills deterministically:
    // 3 slots enqueue, every later request sheds as Busy.
    let svc = Service::start(ServiceConfig {
        workers: 0,
        queue_capacity: 3,
        ..ServiceConfig::default()
    });
    let hist = Histogram::new(vec![1, 1]).unwrap();
    let mut receivers = Vec::new();
    let mut busy = 0;
    for k in 0..5 {
        match svc.try_enqueue(Request::Encode {
            family: FamilyId::Huffman,
            histogram: hist.clone(),
            payload: vec![0],
        }) {
            Ok(rx) => receivers.push(rx),
            Err(Response::Busy) => {
                assert!(k >= 3, "slot {k} rejected before the queue was full");
                busy += 1;
            }
            Err(other) => panic!("expected Busy on slot {k}, got {other:?}"),
        }
    }
    assert_eq!(receivers.len(), 3);
    assert_eq!(busy, 2);
    assert_eq!(svc.metrics().busy, 2);
    assert_eq!(svc.shutdown(), 3, "the three queued jobs are dropped");
}

#[test]
fn tcp_busy_surfaces_to_clients() {
    let server = Server::bind(
        Service::start(ServiceConfig {
            workers: 0,
            queue_capacity: 1,
            request_timeout: std::time::Duration::from_millis(200),
            ..ServiceConfig::default()
        }),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr();
    let hist = Histogram::new(vec![3, 2, 1]).unwrap();

    // Two clients race: one occupies the single queue slot (and times
    // out, since nothing drains); the other must see Busy.
    let outcomes: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let hist = hist.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .request(&Request::Encode {
                            family: FamilyId::Huffman,
                            histogram: hist,
                            payload: vec![0, 1, 2],
                        })
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let busy = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Busy))
        .count();
    let timeout = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Timeout))
        .count();
    assert_eq!(busy + timeout, 2, "got {outcomes:?}");
    assert!(timeout >= 1, "the occupying request must time out");
    server.shutdown().unwrap();
}
