//! Integration: the four code families as first-class wire citizens.
//!
//! Every family — classic Huffman (legacy opcodes `0x01`/`0x02`),
//! Shannon–Fano (`0x08`/`0x09`), minimax (`0x0A`/`0x0B`), and
//! choosable-edge (`0x0C`/`0x0D`) — must roundtrip over loopback TCP on
//! **both** transports with bytes identical to a direct in-process run,
//! show up in the service's flat-JSON stats under its own
//! `family_<name>_*` counters, and route through the gateway with the
//! same bytes and per-family request counters. A mixed-family store
//! directory must answer a restart entirely out of tier 1, and
//! Shannon–Fano's wire-visible cost must stay within Claim 7.1's one
//! extra bit per symbol of Huffman's.

use partree::gateway::{Gateway, GatewayConfig};
use partree::service::frame::{Histogram, Request, Response};
use partree::service::net::{Server, Transport};
use partree::service::server::{Service, ServiceConfig};
use partree::service::{Client, FamilyId};
use std::time::Duration;

/// A payload over `n` symbols leading with one of each so every
/// histogram count is nonzero.
fn payload(n: usize, len: usize) -> Vec<u8> {
    let mut s = 0x9e37_79b9u64 | 1;
    let mut out: Vec<u8> = (0..n as u16).map(|x| x as u8).collect();
    while out.len() < len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        out.push((s % n as u64) as u8);
    }
    out
}

/// Direct in-process encode, the byte-identity baseline.
fn direct_encode(svc: &Service, f: FamilyId, hist: &Histogram, msg: &[u8]) -> (u64, Vec<u8>) {
    match svc.submit(Request::Encode {
        family: f,
        histogram: hist.clone(),
        payload: msg.to_vec(),
    }) {
        Response::Encoded { bit_len, data } => (bit_len, data),
        other => panic!("direct {f} encode failed: {other:?}"),
    }
}

#[test]
fn every_family_roundtrips_on_both_transports_with_wire_counters() {
    let msg = payload(8, 256);
    let hist = Histogram::of_payload(8, &msg).unwrap();
    let direct = Service::start(ServiceConfig::default());

    for transport in [Transport::Blocking, Transport::Reactor] {
        let server = Server::bind_with(
            Service::start(ServiceConfig::default()),
            "127.0.0.1:0",
            transport,
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        for f in FamilyId::ALL {
            let (bits, data) = client.encode_with(f, &hist, &msg).unwrap();
            let (d_bits, d_data) = direct_encode(&direct, f, &hist, &msg);
            assert_eq!(
                (bits, &data),
                (d_bits, &d_data),
                "{f} over {transport:?}: wire == direct"
            );
            let back = client.decode_with(f, &hist, bits, &data).unwrap();
            assert_eq!(back, msg, "{f} over {transport:?}: decode roundtrip");
        }

        // The flat-JSON stats must survive the wire with per-family
        // counters intact: one encode + one decode per family, one
        // construction each, and the decode hitting the encode's entry.
        let snap = client.stats().unwrap();
        assert_eq!(
            snap.family_requests,
            [2, 2, 2, 2],
            "{transport:?}: requests counted per family"
        );
        assert_eq!(
            snap.family_constructions,
            [1, 1, 1, 1],
            "{transport:?}: one build per family"
        );
        assert_eq!(
            snap.family_hits,
            [1, 1, 1, 1],
            "{transport:?}: each decode reused its family's codebook"
        );

        server.shutdown().unwrap();
    }
    direct.shutdown();
}

#[test]
fn gateway_serves_every_family_with_per_family_counters() {
    let msg = payload(6, 300);
    let hist = Histogram::of_payload(6, &msg).unwrap();
    let direct = Service::start(ServiceConfig::default());

    let servers: Vec<Server> = (0..3)
        .map(|_| Server::bind(Service::start(ServiceConfig::default()), "127.0.0.1:0").unwrap())
        .collect();
    let mut cfg = GatewayConfig::new(servers.iter().map(|s| s.addr()).collect());
    cfg.deadline = Duration::from_secs(5);
    let gw = Gateway::start(cfg);

    for f in FamilyId::ALL {
        let (bits, data) = gw.encode_with(f, &hist, &msg).unwrap();
        let (d_bits, d_data) = direct_encode(&direct, f, &hist, &msg);
        assert_eq!((bits, &data), (d_bits, &d_data), "{f}: gateway == direct");
        assert_eq!(gw.decode_with(f, &hist, bits, &data).unwrap(), msg);
    }

    // The gateway's own flat JSON carries one requests counter per
    // family (encode + decode = 2 each).
    let json = match gw.request(&Request::Stats).unwrap() {
        Response::Stats { json } => json,
        other => panic!("expected Stats, got {other:?}"),
    };
    for f in FamilyId::ALL {
        let key = format!("\"family_{}_requests\":2", f.name());
        assert!(json.contains(&key), "missing {key} in {json}");
    }

    gw.shutdown();
    for s in servers {
        s.shutdown().unwrap();
    }
    direct.shutdown();
}

#[test]
fn mixed_family_store_answers_restart_without_reconstruction() {
    let dir = std::env::temp_dir().join(format!("partree-mixed-family-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServiceConfig {
        workers: 1,
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let msg = payload(10, 200);
    let hist = Histogram::of_payload(10, &msg).unwrap();

    // Cold: one construction per family, all written through under
    // family-tagged keys (Huffman's record stays v1 on disk).
    let svc = Service::start(cfg());
    let cold: Vec<(u64, Vec<u8>)> = FamilyId::ALL
        .into_iter()
        .map(|f| direct_encode(&svc, f, &hist, &msg))
        .collect();
    assert_eq!(svc.metrics().constructions, 4);
    svc.shutdown();

    // Warm restart: every family's codebook comes off the log — zero
    // reconstructions, bytes identical.
    let svc = Service::start(cfg());
    let warm: Vec<(u64, Vec<u8>)> = FamilyId::ALL
        .into_iter()
        .map(|f| direct_encode(&svc, f, &hist, &msg))
        .collect();
    assert_eq!(warm, cold, "mixed-family restart is bit-identical");
    let m = svc.metrics();
    assert_eq!(m.constructions, 0, "all four served from tier 1: {m:?}");
    assert_eq!(m.tier1_hits, 4);
    assert_eq!(m.store_errors, 0);
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shannon_fano_stays_within_one_bit_per_symbol_on_the_wire() {
    // Claim 7.1 at the service boundary: for the same payload, the
    // Shannon–Fano encoding spends at most one extra bit per symbol
    // over Huffman's optimum — and never beats it.
    let server = Server::bind(Service::start(ServiceConfig::default()), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for n in [2usize, 5, 17, 64] {
        let msg = payload(n, 400);
        let hist = Histogram::of_payload(n, &msg).unwrap();
        let (huff_bits, _) = client.encode_with(FamilyId::Huffman, &hist, &msg).unwrap();
        let (sf_bits, _) = client
            .encode_with(FamilyId::ShannonFano, &hist, &msg)
            .unwrap();
        assert!(sf_bits >= huff_bits, "n={n}: Huffman is optimal");
        assert!(
            sf_bits <= huff_bits + msg.len() as u64,
            "n={n}: SF {sf_bits} bits vs Huffman {huff_bits} + {} symbols",
            msg.len()
        );
    }
    server.shutdown().unwrap();
}
