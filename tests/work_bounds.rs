//! Integration: the paper's work bounds, measured end to end with the
//! PRAM comparison counters — the machine-independent half of every
//! theorem (see DESIGN.md §2 on the PRAM substitution).

use partree::core::gen;
use partree::huffman::parallel::huffman_parallel_cost_counted;
use partree::monge::bottom_up::concave_mul_bottom_up;
use partree::monge::cut::concave_mul;
use partree::monge::dense::{min_plus_naive, Matrix};
use partree::monge::smawk::smawk_mul;
use partree::pram::OpCounter;

fn concave(n: usize, seed: u64) -> Matrix {
    Matrix::from_rows(&gen::random_monge(n, n, seed))
}

/// Theorem 4.1's separation: the concave product's comparisons grow
/// quadratically while the naive product's grow cubically — measured,
/// not assumed.
#[test]
fn concave_multiplication_work_scales_quadratically() {
    let mut prev_fast = 0f64;
    let mut prev_slow = 0f64;
    for &n in &[64usize, 128, 256] {
        let a = concave(n, 1);
        let b = concave(n, 2);
        let fast = OpCounter::new();
        let _ = concave_mul(&a, &b, Some(&fast));
        let slow = OpCounter::new();
        let _ = min_plus_naive(&a, &b, Some(&slow));
        if prev_fast > 0.0 {
            let fast_ratio = fast.get() as f64 / prev_fast;
            let slow_ratio = slow.get() as f64 / prev_slow;
            // Doubling n: quadratic ⇒ ×4-ish, cubic ⇒ ×8.
            assert!(fast_ratio < 5.0, "fast grew ×{fast_ratio:.1} on doubling");
            assert!(slow_ratio > 7.5, "naive grew ×{slow_ratio:.1} on doubling");
        }
        prev_fast = fast.get() as f64;
        prev_slow = slow.get() as f64;
    }
}

/// All three sub-cubic concave products stay within small constants of
/// n² on the same inputs.
#[test]
fn all_fast_products_are_small_constant_times_n_squared() {
    let n = 256usize;
    let a = concave(n, 5);
    let b = concave(n, 6);
    let n2 = (n * n) as u64;
    for (name, ops) in [
        ("recursive", {
            let c = OpCounter::new();
            let _ = concave_mul(&a, &b, Some(&c));
            c.get()
        }),
        ("bottom_up", {
            let c = OpCounter::new();
            let _ = concave_mul_bottom_up(&a, &b, Some(&c));
            c.get()
        }),
        ("smawk", {
            let c = OpCounter::new();
            let _ = smawk_mul(&a, &b, Some(&c));
            c.get()
        }),
    ] {
        assert!(ops <= 8 * n2, "{name}: {ops} cmps > 8·n²");
        assert!(ops >= n2 / 8, "{name}: {ops} cmps suspiciously low");
    }
}

/// Theorem 5.1's work: the whole Huffman pipeline (2·⌈log n⌉ + 1
/// concave products) stays within a small constant of n²·log n — far
/// below the n³ a single naive product would use.
#[test]
fn huffman_pipeline_work_is_n_squared_log_n() {
    for &n in &[128usize, 256, 512] {
        let w = gen::zipf_weights(n, 1.1, 3);
        let ops = OpCounter::new();
        let _ = huffman_parallel_cost_counted(&w, Some(&ops)).unwrap();
        let budget = 3.0 * (n * n) as f64 * (n as f64).log2();
        assert!(
            (ops.get() as f64) < budget,
            "n={n}: {} cmps > 3·n²·log n = {budget}",
            ops.get()
        );
        let n3 = (n * n * n) as f64;
        assert!((ops.get() as f64) < n3 / 2.0, "n={n}: work should be ≪ n³");
    }
}
