//! Integration: the paper's work AND depth bounds, measured end to end
//! with the PRAM cost tracer — the machine-independent half of every
//! theorem (see DESIGN.md §2 on the PRAM substitution). Depth here is
//! the tracer's synchronous-round count: parallel children contribute
//! their max, sequential composition adds.

use partree::core::gen;
use partree::huffman::parallel::huffman_parallel_cost_traced;
use partree::monge::bottom_up::concave_mul_bottom_up;
use partree::monge::cut::concave_mul;
use partree::monge::dense::{min_plus_naive, Matrix};
use partree::monge::smawk::smawk_mul;
use partree::pram::CostTracer;

fn concave(n: usize, seed: u64) -> Matrix {
    Matrix::from_rows(&gen::random_monge(n, n, seed))
}

fn ceil_log2(n: usize) -> u64 {
    u64::from(usize::BITS - n.saturating_sub(1).leading_zeros())
}

/// Theorem 4.1's separation: the concave product's comparisons grow
/// quadratically while the naive product's grow cubically — measured,
/// not assumed.
#[test]
fn concave_multiplication_work_scales_quadratically() {
    let mut prev_fast = 0f64;
    let mut prev_slow = 0f64;
    for &n in &[64usize, 128, 256] {
        let a = concave(n, 1);
        let b = concave(n, 2);
        let fast = CostTracer::named("concave_mul");
        let _ = concave_mul(&a, &b, &fast);
        let slow = CostTracer::named("naive");
        let _ = min_plus_naive(&a, &b, &slow);
        let (fast, slow) = (fast.aggregate().work, slow.aggregate().work);
        if prev_fast > 0.0 {
            let fast_ratio = fast as f64 / prev_fast;
            let slow_ratio = slow as f64 / prev_slow;
            // Doubling n: quadratic ⇒ ×4-ish, cubic ⇒ ×8.
            assert!(fast_ratio < 5.0, "fast grew ×{fast_ratio:.1} on doubling");
            assert!(slow_ratio > 7.5, "naive grew ×{slow_ratio:.1} on doubling");
        }
        prev_fast = fast as f64;
        prev_slow = slow as f64;
    }
}

/// Theorem 4.1's depth: one concave product runs in O(log n) rounds —
/// exactly 2·⌈log₂ n⌉ + 1 under the tracer's round accounting (one
/// seeding round plus two sweeps per stride halving), at every size.
#[test]
fn concave_mul_depth_is_logarithmic() {
    for &n in &[64usize, 128, 256, 512] {
        let a = concave(n, 1);
        let b = concave(n, 2);
        let t = CostTracer::named("concave_mul");
        let _ = concave_mul(&a, &b, &t);
        let wd = t.aggregate();
        assert_eq!(
            wd.depth,
            2 * ceil_log2(n) + 1,
            "n={n}: concave_mul depth {} ≠ 2⌈log n⌉+1",
            wd.depth
        );
        // …while the per-row SMAWK ablation is depth-Θ(n): the paper's
        // reason to prefer the cut-based product in parallel settings.
        let s = CostTracer::named("smawk");
        let _ = smawk_mul(&a, &b, &s);
        assert!(
            s.aggregate().depth >= n as u64,
            "n={n}: smawk ablation should pay linear depth"
        );
    }
}

/// All three sub-cubic concave products stay within small constants of
/// n² on the same inputs.
#[test]
fn all_fast_products_are_small_constant_times_n_squared() {
    let n = 256usize;
    let a = concave(n, 5);
    let b = concave(n, 6);
    let n2 = (n * n) as u64;
    for (name, ops) in [
        ("recursive", {
            let c = CostTracer::named("recursive");
            let _ = concave_mul(&a, &b, &c);
            c.aggregate().work
        }),
        ("bottom_up", {
            let c = CostTracer::named("bottom_up");
            let _ = concave_mul_bottom_up(&a, &b, &c);
            c.aggregate().work
        }),
        ("smawk", {
            let c = CostTracer::named("smawk");
            let _ = smawk_mul(&a, &b, &c);
            c.aggregate().work
        }),
    ] {
        assert!(ops <= 8 * n2, "{name}: {ops} cmps > 8·n²");
        assert!(ops >= n2 / 8, "{name}: {ops} cmps suspiciously low");
    }
}

/// Theorem 5.1's work: the whole Huffman pipeline (2·⌈log n⌉ + 1
/// concave products) stays within a small constant of n²·log n — far
/// below the n³ a single naive product would use.
#[test]
fn huffman_pipeline_work_is_n_squared_log_n() {
    for &n in &[128usize, 256, 512] {
        let w = gen::zipf_weights(n, 1.1, 3);
        let t = CostTracer::named("huffman");
        let work = {
            let _ = huffman_parallel_cost_traced(&w, &t).unwrap();
            t.aggregate().work
        };
        let budget = 3.0 * (n * n) as f64 * (n as f64).log2();
        assert!(
            (work as f64) < budget,
            "n={n}: {work} cmps > 3·n²·log n = {budget}"
        );
        let n3 = (n * n * n) as f64;
        assert!((work as f64) < n3 / 2.0, "n={n}: work should be ≪ n³");
    }
}

/// Theorem 5.1's depth: the pipeline's critical path is O(log² n)
/// rounds. Checked two ways: an absolute budget (each of the
/// 2·⌈log n⌉+1 products costs 2·⌈log n⌉+1 rounds, plus the sort and
/// the M′ build), and a growth check — multiplying n by 8 must grow
/// the depth like (log n)², i.e. well under ×3, while the work grows
/// ×~64.
#[test]
fn huffman_pipeline_depth_is_log_squared() {
    let mut depths = Vec::new();
    for &n in &[64usize, 128, 256, 512] {
        let w = gen::zipf_weights(n, 1.1, 3);
        let t = CostTracer::named("huffman");
        let _ = huffman_parallel_cost_traced(&w, &t).unwrap();
        let wd = t.aggregate();
        let lg = ceil_log2(n) as f64;
        let budget = 8.0 * lg * lg;
        assert!(
            (wd.depth as f64) < budget,
            "n={n}: depth {} > 8·log²n = {budget}",
            wd.depth
        );
        // Per-phase structure is present: each named phase reported both
        // work and a nonzero round count.
        let snap = t.snapshot();
        for phase in ["sort", "height_bounded_dp", "spine"] {
            let s = snap
                .find(phase)
                .unwrap_or_else(|| panic!("missing span {phase}"));
            let tot = s.total();
            assert!(tot.work > 0, "n={n}: phase {phase} reported no work");
            assert!(tot.depth > 0, "n={n}: phase {phase} reported no rounds");
        }
        depths.push(wd.depth as f64);
    }
    let growth = depths.last().unwrap() / depths.first().unwrap();
    // n: 64 → 512 (×8). log²: 36 → 81 (×2.25). Anything linear-ish
    // in n would be ×8.
    assert!(
        growth < 3.0,
        "depth grew ×{growth:.2} over n×8 — not polylogarithmic"
    );
}
