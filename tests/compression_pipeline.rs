//! Integration: the full compression pipeline across crates —
//! frequencies → Huffman (three algorithms) → prefix code → bit stream
//! → decoded symbols, plus the Shannon–Fano and canonical-code routes.

use partree::codes::canonical::canonical_code;
use partree::codes::prefix::PrefixCode;
use partree::codes::shannon_fano::shannon_fano;
use partree::core::gen;
use partree::huffman::dp::huffman_dp;
use partree::huffman::parallel::{huffman_parallel, huffman_parallel_cost};
use partree::huffman::sequential::{huffman_heap, huffman_two_queue, weighted_length};
use partree::pram::CostTracer;
use partree::trees::kraft::kraft_complete;

/// All four Huffman implementations agree on the optimum.
#[test]
fn four_huffman_algorithms_agree() {
    for seed in 0..8 {
        for dist in ["uniform", "zipf", "geometric"] {
            let w = match dist {
                "uniform" => gen::uniform_weights(48, 500, seed),
                "zipf" => gen::zipf_weights(48, 1.1, seed),
                _ => gen::geometric_weights(32, 1.5, seed),
            };
            let heap = huffman_heap(&w).unwrap().cost;
            let sorted = gen::sorted(w.clone());
            let two_q = huffman_two_queue(&sorted).unwrap().cost;
            let dp = huffman_dp(&sorted, &CostTracer::disabled()).unwrap().cost;
            let par = huffman_parallel_cost(&w).unwrap();
            assert_eq!(heap, two_q, "{dist} seed={seed}");
            assert_eq!(heap, dp, "{dist} seed={seed}");
            assert_eq!(heap, par, "{dist} seed={seed}");
        }
    }
}

/// End-to-end: Zipf text through the parallel-Huffman code and back.
#[test]
fn roundtrip_through_parallel_huffman_code() {
    let n_sym = 40usize;
    let w = gen::zipf_weights(n_sym, 1.0, 3);
    let huff = huffman_parallel(&w).unwrap();
    let code = PrefixCode::from_tree(&huff.tree, n_sym).unwrap();

    let msg: Vec<usize> = gen::random_string(5000, &(0..n_sym as u8).collect::<Vec<_>>(), 5)
        .into_iter()
        .map(|b| b as usize)
        .collect();
    let (bytes, bits) = code.encode(&msg).unwrap();
    assert_eq!(code.decode(&bytes, bits).unwrap(), msg);

    // The bit count matches Σ lengths over the message.
    let expect: u64 = msg.iter().map(|&s| u64::from(huff.lengths[s])).sum();
    assert_eq!(bits, expect);
}

/// Lengths → canonical code → same compression, decodable.
#[test]
fn canonical_code_from_huffman_lengths() {
    let w = gen::uniform_weights(25, 100, 9);
    let huff = huffman_heap(&w).unwrap();
    let canon = canonical_code(&huff.lengths).unwrap();
    assert_eq!(canon.lengths(), huff.lengths);

    let msg: Vec<usize> = (0..25).chain((0..25).rev()).collect();
    let (bytes, bits) = canon.encode(&msg).unwrap();
    assert_eq!(canon.decode(&bytes, bits).unwrap(), msg);
}

/// Shannon–Fano sits between Huffman and Huffman + 1 on every workload,
/// and both codes round-trip the same message.
#[test]
fn shannon_fano_vs_huffman_full_pipeline() {
    for seed in 0..6 {
        let w = gen::zipf_weights(64, 1.3, seed);
        let total: f64 = w.iter().sum();
        let huff = huffman_parallel(&w).unwrap();
        let sf = shannon_fano(&w).unwrap();

        let h_avg = huff.cost().value() / total;
        let s_avg = sf.average_length(&w);
        assert!(h_avg <= s_avg + 1e-9, "seed={seed}");
        assert!(s_avg <= h_avg + 1.0 + 1e-9, "seed={seed}");

        let msg: Vec<usize> = (0..64).collect();
        let hc = PrefixCode::from_tree(&huff.tree, 64).unwrap();
        let (hb, hbits) = hc.encode(&msg).unwrap();
        let (sb, sbits) = sf.code.encode(&msg).unwrap();
        assert_eq!(hc.decode(&hb, hbits).unwrap(), msg);
        assert_eq!(sf.code.decode(&sb, sbits).unwrap(), msg);
    }
}

/// Invariants of the parallel Huffman output.
#[test]
fn parallel_huffman_output_invariants() {
    for n in [2usize, 3, 7, 33, 100] {
        let w = gen::uniform_weights(n, 64, n as u64);
        let huff = huffman_parallel(&w).unwrap();
        assert!(kraft_complete(&huff.lengths), "n={n}");
        assert_eq!(weighted_length(&w, &huff.lengths), huff.cost(), "n={n}");
        huff.tree.validate().unwrap();
        assert_eq!(huff.tree.leaf_count(), n);
        // Every symbol appears exactly once as a tag.
        let mut tags: Vec<usize> = huff
            .tree
            .leaf_levels()
            .iter()
            .map(|&(_, t)| t.unwrap())
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..n).collect::<Vec<_>>());
    }
}
