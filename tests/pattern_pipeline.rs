//! Integration: leaf-pattern construction across its three algorithms
//! and its consumers (Shannon–Fano lengths, Huffman lengths).

use partree::core::gen;
use partree::huffman::sequential::huffman_heap;
use partree::trees::bitonic::build_bitonic;
use partree::trees::finger::build_general;
use partree::trees::kraft::{kraft_feasible, minimal_forest_size};
use partree::trees::monotone::build_monotone;
use partree::trees::pattern::{build_exact, is_bitonic, is_monotone};

/// The three §7 builders and the sequential baseline agree on
/// feasibility and realize identical depth sequences on their shared
/// domains.
#[test]
fn builders_agree_on_shared_domains() {
    for seed in 0..12 {
        let mono = gen::monotone_pattern(40, seed);
        assert!(is_monotone(&mono));
        let a = build_monotone(&mono).unwrap();
        let b = build_bitonic(&mono).unwrap(); // monotone ⊂ bitonic
        let c = build_general(&mono).unwrap().tree;
        let d = build_exact(&mono).unwrap();
        for t in [&a, &b, &c, &d] {
            assert_eq!(t.leaf_depths(), mono, "seed={seed}");
        }

        let bito = gen::bitonic_pattern(41, seed);
        assert!(is_bitonic(&bito));
        let b = build_bitonic(&bito).unwrap();
        let c = build_general(&bito).unwrap().tree;
        let d = build_exact(&bito).unwrap();
        for t in [&b, &c, &d] {
            assert_eq!(t.leaf_depths(), bito, "seed={seed}");
        }
    }
}

/// Huffman code lengths, sorted descending, form a feasible monotone
/// pattern realizing a tree of the same cost — closing the loop between
/// the code and tree views.
#[test]
fn huffman_lengths_realize_as_monotone_pattern() {
    for seed in 0..8 {
        let w = gen::zipf_weights(30, 1.2, seed);
        let huff = huffman_heap(&w).unwrap();
        let mut pattern = huff.lengths.clone();
        pattern.sort_unstable_by(|a, b| b.cmp(a));
        assert!(kraft_feasible(&pattern), "Huffman lengths satisfy Kraft");
        assert_eq!(minimal_forest_size(&pattern), 1);
        let t = build_monotone(&pattern).unwrap();
        assert_eq!(t.leaf_depths(), pattern);
        // Same multiset of depths, paired heaviest ↔ shortest (the
        // rearrangement-minimal pairing), reproduces the optimal cost.
        let mut sw = w.clone();
        sw.sort_by(|a, b| b.total_cmp(a));
        let cost: f64 = sw
            .iter()
            .zip(pattern.iter().rev())
            .map(|(&w, &l)| w * f64::from(l))
            .sum();
        assert_eq!(cost, huff.cost.value(), "seed={seed}");
    }
}

/// Random patterns: the general builder and the sequential baseline
/// agree on feasibility everywhere (not just structured inputs).
#[test]
fn general_and_baseline_agree_on_random_patterns() {
    use rand::Rng;
    let mut r = gen::rng(77);
    let mut feasible_seen = 0;
    for _ in 0..300 {
        let n = r.gen_range(1..25);
        let p: Vec<u32> = (0..n).map(|_| r.gen_range(0..6)).collect();
        let fast = build_general(&p);
        let slow = build_exact(&p);
        assert_eq!(fast.is_ok(), slow.is_ok(), "pattern {p:?}");
        if let Ok(out) = fast {
            feasible_seen += 1;
            assert_eq!(out.tree.leaf_depths(), p);
            assert_eq!(slow.unwrap().leaf_depths(), p);
        }
    }
    assert!(feasible_seen > 20, "sweep should hit feasible patterns");
}

/// Forest semantics: infeasible bitonic patterns produce exactly
/// ⌈Kraft⌉ trees whose concatenated leaves read the input pattern.
#[test]
fn minimal_forests_cover_infeasible_patterns() {
    use rand::Rng;
    let mut r = gen::rng(13);
    for _ in 0..50 {
        let n = r.gen_range(2..60);
        let mut p = gen::bitonic_pattern(n, r.gen());
        // Lift everything up a level or two to make it often overfull.
        for l in p.iter_mut() {
            *l = l.saturating_sub(r.gen_range(0..2));
        }
        if !is_bitonic(&p) {
            continue;
        }
        let f = partree::trees::bitonic::build_bitonic_forest(&p).unwrap();
        assert_eq!(f.len() as u64, minimal_forest_size(&p), "pattern {p:?}");
        let depths: Vec<u32> = f.leaf_levels().iter().map(|&(d, _)| d).collect();
        assert_eq!(depths, p);
    }
}
