//! Differential testing: four independent optimal-code constructions —
//! the paper's parallel pipeline, the sequential heap, package-merge
//! (with a generous length limit), and Garsia–Wachs — must agree on the
//! total weighted path length for every input family. The cost of an
//! optimal code is permutation-invariant, so the sorted-input oracles
//! (package-merge, Garsia–Wachs) are run on `gen::sorted` copies and
//! compared against the unsorted runs of the other two.

use partree::core::gen;
use partree::huffman::garsia_wachs::garsia_wachs;
use partree::huffman::package_merge::package_merge;
use partree::huffman::parallel::huffman_parallel;
use partree::huffman::sequential::huffman_heap;

/// A length limit no optimal code ever hits: n − 1 is the depth of the
/// most skewed binary tree on n leaves.
fn generous_limit(n: usize) -> u32 {
    (n - 1) as u32
}

fn assert_all_agree(label: &str, w: &[f64]) {
    let n = w.len();
    let par = huffman_parallel(w).expect("parallel");
    let heap = huffman_heap(w).expect("heap");
    let sorted = gen::sorted(w.to_vec());
    let (_, gw) = garsia_wachs(&sorted).expect("garsia-wachs");
    let (_, pm) = package_merge(&sorted, generous_limit(n)).expect("package-merge");

    assert_eq!(par.cost(), heap.cost, "{label}: parallel vs heap");
    assert_eq!(gw, heap.cost, "{label}: garsia-wachs vs heap");
    assert_eq!(pm, heap.cost, "{label}: package-merge vs heap");

    // The parallel code must also be a valid prefix code of that cost:
    // Kraft equality and length-weighted sum both recomputed from the
    // reported lengths.
    assert_eq!(par.lengths.len(), n, "{label}: one length per symbol");
    let kraft: f64 = par.lengths.iter().map(|&l| 0.5f64.powi(l as i32)).sum();
    assert!((kraft - 1.0).abs() < 1e-9, "{label}: Kraft sum {kraft} ≠ 1");
}

#[test]
fn random_inputs_agree() {
    for &n in &[2usize, 3, 7, 33, 128, 257] {
        for seed in [1u64, 5, 9] {
            let w = gen::uniform_weights(n, 1000, seed);
            assert_all_agree(&format!("uniform n={n} seed={seed}"), &w);
            let z = gen::zipf_weights(n, 1.2, seed);
            assert_all_agree(&format!("zipf n={n} seed={seed}"), &z);
        }
    }
}

#[test]
fn sorted_inputs_agree() {
    for &n in &[16usize, 64, 200] {
        let asc = gen::sorted(gen::geometric_weights(n, 1.3, 2));
        assert_all_agree(&format!("ascending n={n}"), &asc);
        let mut desc = asc.clone();
        desc.reverse();
        assert_all_agree(&format!("descending n={n}"), &desc);
    }
}

#[test]
fn equal_weight_inputs_agree() {
    // All-equal weights: the optimum is the complete-as-possible tree;
    // ties everywhere stress the tie-breaking of every algorithm.
    for &n in &[2usize, 5, 8, 31, 32, 33, 100] {
        let w = vec![1.0; n];
        assert_all_agree(&format!("equal n={n}"), &w);
    }
}

#[test]
fn two_symbol_adversarial_inputs_agree() {
    // Two-valued weight sets with extreme imbalance produce the
    // deepest optimal trees — the adversarial case for height-bounded
    // DP pipelines (the parallel path's A_H matrices must reach the
    // full ⌈log n⌉ height budget and hand off to the spine).
    for &n in &[8usize, 40, 96] {
        // One heavy symbol among featherweights → near-caterpillar tree.
        let mut w = vec![1.0; n];
        w[0] = (n * n) as f64;
        assert_all_agree(&format!("one-heavy n={n}"), &w);

        // Half heavy, half light.
        let mut w = vec![1.0; n];
        for x in w.iter_mut().skip(n / 2) {
            *x = 1e6;
        }
        assert_all_agree(&format!("bimodal n={n}"), &w);

        // Exponentially separated pairs: forces maximal depth spread.
        let w: Vec<f64> = (0..n).map(|i| 2f64.powi((i % 30) as i32)).collect();
        assert_all_agree(&format!("exponential n={n}"), &w);
    }
}
