//! Integration: the delta subsystem's differential invariant at the
//! service boundary — every `EncodeDelta` answer, patched or rebuilt,
//! is byte-identical to a from-scratch `Encode` of the drifted
//! histogram, across chains of drifts in which each drifted codebook
//! becomes the next base, interleaved with full service restarts over
//! a persistent store.

use partree::service::frame::{ErrorCode, Histogram, Request, Response};
use partree::service::server::{Service, ServiceConfig};
use partree::service::{DeltaPath, FamilyId};

fn direct_encode(family: FamilyId, counts: &[u32], payload: &[u8]) -> (u64, Vec<u8>) {
    let svc = Service::start(ServiceConfig::default());
    let resp = svc.submit(Request::Encode {
        family,
        histogram: Histogram::new(counts.to_vec()).unwrap(),
        payload: payload.to_vec(),
    });
    svc.shutdown();
    match resp {
        Response::Encoded { bit_len, data } => (bit_len, data),
        other => panic!("direct {family} encode failed: {other:?}"),
    }
}

fn delta_encode(
    svc: &Service,
    family: FamilyId,
    base_key: u64,
    deltas: &[(u16, i32)],
    payload: &[u8],
) -> (u8, u64, Vec<u8>) {
    match svc.submit(Request::EncodeDelta {
        family,
        base_key,
        deltas: deltas.to_vec(),
        payload: payload.to_vec(),
    }) {
        Response::DeltaEncoded {
            path,
            bit_len,
            data,
        } => (path, bit_len, data),
        other => panic!("{family} delta encode failed: {other:?}"),
    }
}

fn apply_deltas(counts: &[u32], deltas: &[(u16, i32)]) -> Vec<u32> {
    let mut next = counts.to_vec();
    for &(s, d) in deltas {
        let v = i64::from(next[s as usize]) + i64::from(d);
        next[s as usize] = u32::try_from(v).expect("test drift stays in range");
    }
    next
}

/// A payload over the symbols that stay present across every drift in
/// these chains (symbol 7 is the one a structural step removes).
fn payload_for(n: usize) -> Vec<u8> {
    (0..160).map(|i| (i % (n - 1)) as u8).collect()
}

#[test]
fn drift_chains_survive_restarts_bit_identically() {
    let dir = std::env::temp_dir().join(format!("partree-delta-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServiceConfig {
        workers: 1,
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    // Well-separated base: distinct counts and distinct merge sums, so
    // bounded steps genuinely exercise the Huffman patch rule rather
    // than always falling back.
    let base: Vec<u32> = vec![610, 310, 160, 80, 40, 21, 11, 5];
    let n = base.len();
    let payload = payload_for(n);

    // Each chain step drifts the *previous* step's histogram: the
    // installed drifted codebook becomes the next base, so the chain
    // exercises write-through and key re-resolution at every link.
    // `None` marks a restart of the store-backed service.
    type Step = Option<Vec<(u16, i32)>>;
    let steps: Vec<Step> = vec![
        Some(vec![(0, 60), (3, -9)]), // bounded → patch
        Some(vec![(1, -40), (5, 4)]), // bounded → patch
        None,                         // restart mid-chain
        Some(vec![(2, 30)]),          // bounded, base off tier 1
        Some(vec![(0, 2000)]),        // ratio blown → rebuild
        None,                         // restart again
        Some(vec![(7, -5)]),          // symbol removed → rebuild
        Some(vec![(4, 13), (6, 3)]),  // bounded on shrunk alphabet
    ];

    for family in FamilyId::ALL {
        let _ = std::fs::remove_dir_all(&dir);
        let mut svc = Service::start(cfg());
        // Seed the chain's root the only way a client can: a full
        // encode of the base histogram.
        let base_hist = Histogram::new(base.clone()).unwrap();
        match svc.submit(Request::Encode {
            family,
            histogram: base_hist.clone(),
            payload: payload.clone(),
        }) {
            Response::Encoded { .. } => {}
            other => panic!("{family}: seeding failed: {other:?}"),
        }
        let mut counts = base.clone();
        let mut key = family.tagged_key(base_hist.hash64());
        let mut patched = 0u64;
        let mut rebuilt = 0u64;

        for (i, step) in steps.iter().enumerate() {
            let Some(deltas) = step else {
                svc.shutdown();
                svc = Service::start(cfg());
                continue;
            };
            let next = apply_deltas(&counts, deltas);
            let (path, bit_len, data) = delta_encode(&svc, family, key, deltas, &payload);
            let expected = direct_encode(family, &next, &payload);
            assert_eq!(
                (bit_len, &data),
                (expected.0, &expected.1),
                "{family} step {i}: delta answer != from-scratch answer"
            );
            match DeltaPath::from_tag(path).unwrap() {
                DeltaPath::Patched => patched += 1,
                DeltaPath::Rebuilt => rebuilt += 1,
            }
            counts = next;
            key = family.tagged_key(Histogram::new(counts.clone()).unwrap().hash64());
        }

        let delta_steps = steps.iter().flatten().count() as u64;
        assert_eq!(patched + rebuilt, delta_steps, "{family}: a step was lost");
        let m = svc.metrics();
        assert_eq!(m.delta_unknown_base, 0, "{family}: {m:?}");
        // Huffman and Shannon–Fano have patch rules; minimax and
        // choosable-edge rebuild every drift.
        match family {
            FamilyId::Huffman | FamilyId::ShannonFano => {
                assert!(patched >= 3, "{family}: patch rule never ran ({patched})");
                assert!(
                    rebuilt >= 2,
                    "{family}: structural steps rebuild ({rebuilt})"
                );
            }
            FamilyId::Minimax | FamilyId::ChoosableEdge => {
                assert_eq!(patched, 0, "{family} has no patch rule");
            }
        }
        svc.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_resolves_bases_from_the_store_without_reconstruction() {
    let dir = std::env::temp_dir().join(format!("partree-delta-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServiceConfig {
        workers: 1,
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let base: Vec<u32> = vec![400, 200, 100, 50, 25, 12];
    let payload = vec![0u8, 1, 2, 3, 4, 5, 0, 1, 0];
    let deltas = [(0u16, 50i32), (4, -5)];
    let drifted = apply_deltas(&base, &deltas);

    let svc = Service::start(cfg());
    let base_hist = Histogram::new(base.clone()).unwrap();
    match svc.submit(Request::Encode {
        family: FamilyId::Huffman,
        histogram: base_hist.clone(),
        payload: payload.clone(),
    }) {
        Response::Encoded { .. } => {}
        other => panic!("seed failed: {other:?}"),
    }
    let base_key = FamilyId::Huffman.tagged_key(base_hist.hash64());
    let first = delta_encode(&svc, FamilyId::Huffman, base_key, &deltas, &payload);
    assert_eq!(first.0, DeltaPath::Patched.tag());
    svc.shutdown();

    // Cold restart: the base AND the drifted result both come off the
    // store. The repeated delta is served from the already-persisted
    // drifted codebook — no engine run, no construction, same bytes.
    let svc = Service::start(cfg());
    let again = delta_encode(&svc, FamilyId::Huffman, base_key, &deltas, &payload);
    assert_eq!(again, first, "patched result did not survive the restart");
    let m = svc.metrics();
    assert_eq!(m.constructions, 0, "restart must not reconstruct: {m:?}");
    assert_eq!(m.delta_patched, 1, "{m:?}");
    assert_eq!(m.store_errors, 0, "{m:?}");

    // The drifted codebook also answers a *plain* encode of the
    // drifted histogram — proof it was installed under its own
    // first-class key, not a delta-only alias.
    match svc.submit(Request::Encode {
        family: FamilyId::Huffman,
        histogram: Histogram::new(drifted).unwrap(),
        payload: payload.clone(),
    }) {
        Response::Encoded { bit_len, data } => {
            assert_eq!((bit_len, data), (first.1, first.2), "plain == delta");
        }
        other => panic!("plain encode failed: {other:?}"),
    }
    assert_eq!(svc.metrics().constructions, 0);
    svc.shutdown();

    // A pruned store surfaces as UnknownBase, never a wrong answer.
    let _ = std::fs::remove_dir_all(&dir);
    let svc = Service::start(ServiceConfig {
        workers: 1,
        store_dir: Some(dir.join("empty")),
        ..ServiceConfig::default()
    });
    match svc.submit(Request::EncodeDelta {
        family: FamilyId::Huffman,
        base_key,
        deltas: deltas.to_vec(),
        payload,
    }) {
        Response::Error {
            code: ErrorCode::UnknownBase,
            ..
        } => {}
        other => panic!("expected UnknownBase after prune, got {other:?}"),
    }
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
