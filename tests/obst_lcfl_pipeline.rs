//! Integration: OBST approximation quality against both sequential DPs,
//! and LCFL recognition agreement across engines and grammars.

use partree::core::gen;
use partree::lcfl::bfs::parse_bfs;
use partree::lcfl::grammar::{an_bn, even_palindromes, more_as_than_bs, palindromes};
use partree::lcfl::{recognize_bfs, recognize_divide};
use partree::obst::approx::approx_optimal_bst;
use partree::obst::knuth::obst_knuth;
use partree::obst::naive::obst_naive;
use partree::obst::ObstInstance;

#[test]
fn obst_three_way_agreement_and_eps_guarantee() {
    for seed in 0..6 {
        let inst = ObstInstance::random(30, 200, seed);
        let naive = obst_naive(&inst);
        let knuth = obst_knuth(&inst);
        assert_eq!(naive.cost(), knuth.cost(), "seed={seed}");

        let eps = 1.0 / 30.0;
        let approx = approx_optimal_bst(&inst, eps).unwrap();
        approx.tree.validate(30).unwrap();
        let gap = approx.cost.value() - knuth.cost().value();
        assert!(gap >= -1e-9);
        assert!(gap <= eps * inst.total() + 1e-9, "seed={seed}: gap {gap}");
    }
}

#[test]
fn obst_collapsing_instances_stay_within_eps() {
    for seed in 0..4 {
        let mut inst = ObstInstance::random(40, 500, seed);
        for k in 10..30 {
            inst.q[k] = 0.01;
            inst.p[k] = 0.01;
        }
        let eps = 0.02;
        let approx = approx_optimal_bst(&inst, eps).unwrap();
        assert!(
            approx.collapsed_keys < 40,
            "seed={seed}: collapsing must trigger"
        );
        let opt = obst_knuth(&inst).cost();
        assert!(
            approx.cost.value() - opt.value() <= eps * inst.total() + 1e-9,
            "seed={seed}"
        );
    }
}

#[test]
fn lcfl_engines_agree_across_grammars_and_lengths() {
    for (gname, g) in [
        ("even_pal", even_palindromes()),
        ("pal", palindromes()),
        ("anbn", an_bn()),
        ("more_as", more_as_than_bs()),
    ] {
        for seed in 0..30u64 {
            let len = 1 + (seed as usize * 3) % 40;
            let w = gen::random_string(len, b"ab", seed);
            assert_eq!(
                recognize_divide(&g, &w),
                recognize_bfs(&g, &w),
                "{gname} on {:?}",
                String::from_utf8_lossy(&w)
            );
        }
    }
}

#[test]
fn lcfl_structured_accepts_and_near_misses() {
    let pal = even_palindromes();
    let anbn = an_bn();
    for k in [1usize, 7, 33, 100] {
        let p = gen::palindrome(k, k as u64);
        assert!(recognize_divide(&pal, &p), "palindrome half={k}");
        let s = gen::an_bn(k);
        assert!(recognize_divide(&anbn, &s), "a^{k}b^{k}");
        // Near misses.
        let mut bad = s.clone();
        bad[k - 1] = b'b';
        let expect = recognize_bfs(&anbn, &bad);
        assert_eq!(recognize_divide(&anbn, &bad), expect);
        assert!(
            !expect || k == 1,
            "a^(k-1) b^(k+1) is out of the language for k>1"
        );
    }
}

#[test]
fn lcfl_parses_replay_for_every_accepted_string() {
    for (g, words) in [
        (
            palindromes(),
            vec![b"a".to_vec(), gen::palindrome(9, 1), gen::palindrome(20, 2)],
        ),
        (an_bn(), vec![gen::an_bn(1), gen::an_bn(13)]),
        (more_as_than_bs(), vec![b"aaab".to_vec(), b"aaaaa".to_vec()]),
    ] {
        for w in words {
            let d = parse_bfs(&g, &w).expect("in the language");
            assert_eq!(d.derived_string().expect("valid"), w);
        }
    }
}
