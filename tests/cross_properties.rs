//! Property-based integration tests (proptest): randomized invariants
//! that span crates.

use partree::codes::prefix::PrefixCode;
use partree::core::cost::PrefixWeights;
use partree::core::gen;
use partree::huffman::alphabetic::alphabetic_optimal;
use partree::huffman::parallel::huffman_parallel;
use partree::huffman::sequential::huffman_heap;
use partree::monge::concave::is_concave;
use partree::monge::cut::concave_mul;
use partree::monge::dense::{min_plus_naive, Matrix};
use partree::pram::CostTracer;
use partree::trees::finger::build_general;
use partree::trees::kraft::kraft_feasible;
use partree::trees::pattern::build_exact;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concave × concave = concave, and the fast product equals the
    /// naive product — on arbitrary random Monge matrices.
    #[test]
    fn concave_product_correct_and_closed(
        p in 1usize..20, q in 1usize..20, r in 1usize..20, seed in 0u64..1000
    ) {
        let a = Matrix::from_rows(&gen::random_monge(p, q, seed));
        let b = Matrix::from_rows(&gen::random_monge(q, r, seed + 1));
        let fast = concave_mul(&a, &b, &CostTracer::disabled());
        let slow = min_plus_naive(&a, &b, &CostTracer::disabled());
        prop_assert!(fast.values.approx_eq(&slow, 1e-6));
        prop_assert!(is_concave(&fast.values, 1e-6));
    }

    /// Cut-matrix monotonicity (the paper's interpolation invariant)
    /// holds on every random product.
    #[test]
    fn cut_monotonicity(n in 2usize..24, seed in 0u64..1000) {
        let a = Matrix::from_rows(&gen::random_monge(n, n, seed));
        let b = Matrix::from_rows(&gen::random_monge(n, n, seed + 7));
        let out = concave_mul(&a, &b, &CostTracer::disabled());
        for i in 0..n {
            for j in 0..n - 1 {
                prop_assert!(out.cut[i * n + j] <= out.cut[i * n + j + 1]);
            }
        }
        for j in 0..n {
            for i in 0..n - 1 {
                prop_assert!(out.cut[i * n + j] <= out.cut[(i + 1) * n + j]);
            }
        }
    }

    /// Huffman invariants on arbitrary weight vectors: the parallel
    /// algorithm matches the heap, lengths satisfy Kraft with equality,
    /// and the code round-trips.
    #[test]
    fn huffman_parallel_invariants(
        weights in prop::collection::vec(1u32..1000, 2..40)
    ) {
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let par = huffman_parallel(&w).unwrap();
        let seq = huffman_heap(&w).unwrap();
        prop_assert_eq!(par.cost(), seq.cost);
        prop_assert!(kraft_feasible(&par.lengths));
        let code = PrefixCode::from_tree(&par.tree, w.len()).unwrap();
        let msg: Vec<usize> = (0..w.len()).collect();
        let (bytes, bits) = code.encode(&msg).unwrap();
        prop_assert_eq!(code.decode(&bytes, bits).unwrap(), msg);
    }

    /// Tree construction: any tree's own leaf-depth pattern is feasible
    /// and rebuilds to the same pattern through Finger-Reduction.
    #[test]
    fn patterns_roundtrip_through_finger_reduction(
        n in 1usize..60, seed in 0u64..500
    ) {
        let p = gen::full_tree_pattern(n, seed);
        let out = build_general(&p).unwrap();
        prop_assert_eq!(out.tree.leaf_depths(), p);
    }

    /// Feasibility agreement between the general parallel builder and
    /// the sequential baseline on arbitrary patterns.
    #[test]
    fn feasibility_agreement(levels in prop::collection::vec(0u32..7, 1..16)) {
        let fast = build_general(&levels);
        let slow = build_exact(&levels);
        prop_assert_eq!(fast.is_ok(), slow.is_ok());
        if let Ok(out) = fast {
            prop_assert_eq!(out.tree.leaf_depths(), levels);
        }
    }

    /// Alphabetic DP optimality: no single rotation improves it (local
    /// optimality spot-check), and it matches Huffman on sorted weights.
    #[test]
    fn alphabetic_matches_huffman_on_sorted(
        weights in prop::collection::vec(1u32..200, 2..24)
    ) {
        let mut w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        w.sort_by(|a, b| a.total_cmp(b));
        let pw = PrefixWeights::new(&w);
        let alpha = alphabetic_optimal(&pw, 0, w.len());
        let huff = huffman_heap(&w).unwrap();
        prop_assert_eq!(alpha.cost, huff.cost);
    }
}
