//! Offline stand-in for `mio`: the epoll-based readiness subset the
//! partree reactors use.
//!
//! The real crate's contract, reduced to what this workspace needs:
//!
//! * [`Poll`] — an `epoll` instance. Sockets are registered with a
//!   [`Token`] and an [`Interest`]; [`Poll::poll`] blocks (bounded by a
//!   timeout) and fills an [`Events`] buffer with what became ready.
//!   Registration is level-triggered by default, so a handler that
//!   leaves bytes unread is re-notified on the next poll;
//!   [`Interest::edge`] opts a registration into edge-triggered
//!   delivery (one event per readiness *transition*), which is what
//!   the cross-thread waker uses.
//! * [`Waker`] — an `eventfd` registered edge-triggered with a `Poll`:
//!   any thread may call [`Waker::wake`] to make a concurrent or
//!   subsequent [`Poll::poll`] return with the waker's token. The
//!   poll-side owner calls [`Waker::drain`] to reset the counter.
//! * [`net`] — non-blocking TCP connect (`SOCK_NONBLOCK` + `connect`
//!   returning `EINPROGRESS`, completion read from `SO_ERROR` once the
//!   socket polls writable), plus an `RLIMIT_NOFILE` raiser for the
//!   soak tests that open tens of thousands of sockets.
//!
//! Everything here speaks raw Linux syscalls through `extern "C"`
//! bindings to the already-linked libc — the build environment has no
//! registry access, and the `libc` crate is deliberately not vendored.
//! This keeps every `unsafe` block of the I/O path in this one leaf
//! crate: `partree-service` and `partree-gateway` stay
//! `#![forbid(unsafe_code)]`.
//
// Vendored stand-in: exempt from the workspace lint policy (the xtask
// lint walks `crates/*/src` only), but SAFETY comments are kept to the
// same standard anyway — this is the only unsafe I/O code in the tree.
#![allow(clippy::all)]
#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

mod sys {
    //! Raw syscall surface: just enough of libc for epoll, eventfd,
    //! non-blocking connect, and rlimit.
    #![allow(non_camel_case_types)]

    pub type c_int = i32;
    pub type c_uint = u32;
    pub type c_void = std::ffi::c_void;

    /// Kernel `struct epoll_event`. On x86_64 the kernel declares it
    /// `__attribute__((packed))` (data at offset 4); other 64-bit
    /// targets use natural alignment (data at offset 8).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    /// `struct sockaddr_in`; port and address are big-endian.
    #[repr(C)]
    pub struct sockaddr_in {
        pub sin_family: u16,
        pub sin_port: u16,
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }

    /// `struct rlimit` (64-bit fields on every 64-bit Linux target).
    #[repr(C)]
    pub struct rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const AF_INET: c_int = 2;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;
    pub const SOL_SOCKET: c_int = 1;
    pub const SO_ERROR: c_int = 4;

    pub const EINPROGRESS: c_int = 115;

    pub const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn connect(fd: c_int, addr: *const sockaddr_in, len: u32) -> c_int;
        pub fn getsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *mut c_void,
            optlen: *mut u32,
        ) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }
}

/// Turns a `-1` syscall return into the current `errno` as `io::Error`.
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Caller-chosen identifier attached to a registration; every readiness
/// event echoes the token of the fd that became ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// What readiness a registration subscribes to. Hangup and error are
/// always delivered regardless of interest, as epoll itself does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable interest.
    pub const READABLE: Interest = Interest(0b001);
    /// Writable interest.
    pub const WRITABLE: Interest = Interest(0b010);

    /// Union of two interests.
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Switches the registration to edge-triggered delivery: one event
    /// per readiness *transition* instead of one per poll while ready.
    /// Used by [`Waker`]; sockets stay level-triggered so a partially
    /// drained read buffer is re-announced.
    pub const fn edge(self) -> Interest {
        Interest(self.0 | 0b100)
    }

    fn epoll_bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.0 & 0b001 != 0 {
            bits |= sys::EPOLLIN;
        }
        if self.0 & 0b010 != 0 {
            bits |= sys::EPOLLOUT;
        }
        if self.0 & 0b100 != 0 {
            bits |= sys::EPOLLET;
        }
        bits
    }
}

/// One readiness notification out of [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: usize,
    bits: u32,
}

impl Event {
    /// The token the ready fd was registered under.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Ready for reading — includes hangup/error, which a read-path
    /// handler must observe (the read will surface the actual error).
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0
    }

    /// Ready for writing — includes hangup/error, for the same reason.
    pub fn is_writable(&self) -> bool {
        self.bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// The peer shut down its write half (or the connection hung up).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }

    /// An error condition is pending on the fd.
    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }
}

/// Reusable buffer [`Poll::poll`] fills with ready [`Event`]s.
pub struct Events {
    raw: Vec<sys::epoll_event>,
    len: usize,
}

impl Events {
    /// A buffer that receives at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::epoll_event { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) kernel struct before use.
            let bits = e.events;
            let data = e.data;
            Event {
                token: data as usize,
                bits,
            }
        })
    }

    /// Whether the last poll delivered anything.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance. Not `Clone`: exactly one thread owns the poll
/// and its registrations; other threads reach it via [`Waker`].
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Creates a fresh epoll instance.
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain syscall, no pointers; the returned fd is owned
        // by the Poll and closed exactly once in Drop.
        let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = sys::epoll_event {
            events: interest.epoll_bits(),
            data: token.0 as u64,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. DEL ignores the event argument entirely.
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with `interest`.
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd.as_raw_fd(), token, interest)
    }

    /// Changes an existing registration's interest (and/or token).
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd.as_raw_fd(), token, interest)
    }

    /// Removes `fd`'s registration. Dropping (closing) a registered fd
    /// also removes it, so this is only needed for fds that live on.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd.as_raw_fd(), Token(0), Interest(0))
    }

    /// Blocks until at least one registration is ready or `timeout`
    /// elapses (`None` = indefinitely), filling `events`. A sub-1ms
    /// timeout is rounded up to 1ms, never down to a busy-spin 0.
    /// Spurious interrupts (`EINTR`) return an empty `events`, like mio.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let ms: i32 = match timeout {
            None => -1,
            Some(t) if t.is_zero() => 0,
            Some(t) => t.as_millis().clamp(1, i32::MAX as u128) as i32,
        };
        events.len = 0;
        // SAFETY: the buffer is a live Vec of `raw.len()` properly
        // initialized epoll_event structs; the kernel writes at most
        // `maxevents` entries into it.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                events.raw.as_mut_ptr(),
                events.raw.len() as i32,
                ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        events.len = n as usize;
        Ok(())
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: epfd was returned by epoll_create1 and is closed
        // exactly here, once.
        unsafe { sys::close(self.epfd) };
    }
}

/// Cross-thread wakeup for a [`Poll`]: an `eventfd` registered
/// edge-triggered under a caller-chosen token. `wake` may be called
/// from any thread, any number of times; the poll thread sees at least
/// one event for them and resets the counter with `drain`.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd and registers it with `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        // SAFETY: plain syscall; the fd is owned by the Waker and
        // closed exactly once in Drop.
        let fd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        let waker = Waker { fd };
        poll.register(&waker, token, Interest::READABLE.edge())?;
        Ok(waker)
    }

    /// Makes a concurrent or subsequent poll return with this waker's
    /// token. Async-signal-thin: one 8-byte write, no allocation.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value to an owned
        // eventfd; eventfd writes of 8 bytes are atomic.
        let n = unsafe { sys::write(self.fd, (&one as *const u64).cast(), 8) };
        if n == 8 {
            return Ok(());
        }
        let e = io::Error::last_os_error();
        // A full counter (u64::MAX - 1 pending wakes) still wakes the
        // poller; treat WouldBlock as success like mio does.
        if e.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        Err(e)
    }

    /// Resets the wake counter (poll-thread side). Idempotent: reading
    /// an already-zero eventfd just returns `WouldBlock`.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reads 8 bytes into a live stack value from an owned
        // nonblocking eventfd.
        let _ = unsafe { sys::read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: fd was returned by eventfd and is closed exactly
        // here, once.
        unsafe { sys::close(self.fd) };
    }
}

pub mod net {
    //! Non-blocking TCP connect and fd-limit helpers.

    use super::{cvt, sys};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::{AsRawFd, FromRawFd};

    /// Starts a non-blocking IPv4 connect: returns immediately with a
    /// `TcpStream` whose connect is still in flight. The caller
    /// registers it for WRITABLE; once writable, [`take_error`] reports
    /// whether the connect actually succeeded. IPv6 targets return
    /// `Unsupported` — callers fall back to a blocking connect.
    pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
        let SocketAddr::V4(v4) = addr else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "non-blocking connect is IPv4-only in the vendored mio",
            ));
        };
        // SAFETY: plain syscall; on success the fd is immediately
        // wrapped in a TcpStream, which owns and closes it.
        let fd = cvt(unsafe {
            sys::socket(
                sys::AF_INET,
                sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
                0,
            )
        })?;
        // SAFETY: fd is fresh from socket(2) above and owned by nothing
        // else; TcpStream takes ownership (closes on drop / error paths).
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        let sa = sys::sockaddr_in {
            sin_family: sys::AF_INET as u16,
            sin_port: v4.port().to_be(),
            // Octets are already network order; keep their memory layout.
            sin_addr: u32::from_ne_bytes(v4.ip().octets()),
            sin_zero: [0; 8],
        };
        // SAFETY: `sa` is a live, fully initialized sockaddr_in and the
        // length matches; the kernel copies it before returning.
        let rc = unsafe {
            sys::connect(
                stream.as_raw_fd(),
                &sa,
                std::mem::size_of::<sys::sockaddr_in>() as u32,
            )
        };
        if rc == 0 {
            return Ok(stream); // loopback can complete synchronously
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(sys::EINPROGRESS) {
            return Ok(stream); // in flight: poll for WRITABLE
        }
        Err(err)
    }

    /// Reads and clears `SO_ERROR`: `Ok(())` if the in-flight connect
    /// (or the socket generally) has no pending error.
    pub fn take_error(stream: &TcpStream) -> io::Result<()> {
        let mut err: i32 = 0;
        let mut len: u32 = 4;
        // SAFETY: optval/optlen point at live stack values sized for
        // the int SO_ERROR returns.
        cvt(unsafe {
            sys::getsockopt(
                stream.as_raw_fd(),
                sys::SOL_SOCKET,
                sys::SO_ERROR,
                (&mut err as *mut i32).cast(),
                &mut len,
            )
        })?;
        if err == 0 {
            Ok(())
        } else {
            Err(io::Error::from_raw_os_error(err))
        }
    }

    /// Current `RLIMIT_NOFILE` as `(soft, hard)`.
    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        let mut lim = sys::rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `lim` is a live, correctly sized rlimit the kernel
        // fills in.
        cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) })?;
        Ok((lim.rlim_cur, lim.rlim_max))
    }

    /// Raises the soft `RLIMIT_NOFILE` toward `target` (raising the
    /// hard limit too when the process may — e.g. root in a container)
    /// and returns the soft limit actually in effect afterwards. Never
    /// lowers anything; a refusal to raise is not an error.
    pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
        let (soft, hard) = nofile_limit()?;
        if soft >= target {
            return Ok(soft);
        }
        if target > hard {
            // Needs a hard-limit raise (privileged); try, ignore refusal.
            let lim = sys::rlimit {
                rlim_cur: target,
                rlim_max: target,
            };
            // SAFETY: `lim` is a live, fully initialized rlimit.
            if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &lim) } == 0 {
                return Ok(target);
            }
        }
        let reachable = target.min(hard);
        if reachable > soft {
            let lim = sys::rlimit {
                rlim_cur: reachable,
                rlim_max: hard,
            };
            // SAFETY: as above.
            if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &lim) } == 0 {
                return Ok(reachable);
            }
        }
        Ok(soft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    #[test]
    fn listener_accept_and_stream_readiness() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.register(&listener, Token(1), Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no connection yet");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        let toks: Vec<usize> = events.iter().map(|e| e.token().0).collect();
        assert!(
            toks.contains(&1),
            "listener readable after connect: {toks:?}"
        );

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poll.register(&accepted, Token(2), Interest::READABLE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        let ready: Vec<_> = events.iter().filter(|e| e.token().0 == 2).collect();
        assert!(!ready.is_empty() && ready[0].is_readable());
        let mut buf = [0u8; 4];
        (&accepted).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Level-triggered: unread bytes re-announce on the next poll.
        client.write_all(b"pong").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token().0 == 2));
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token().0 == 2),
            "level-triggered readiness must persist while unread"
        );
        poll.deregister(&accepted).unwrap();
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        let poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(&poll, Token(9)).unwrap());
        let w2 = Arc::clone(&waker);
        let t = std::thread::spawn(move || w2.wake().unwrap());
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token().0 == 9));
        t.join().unwrap();
        waker.drain();
        // Edge-triggered + drained: quiet until the next wake.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token().0 == 9));
    }

    #[test]
    fn nonblocking_connect_completes_via_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poll = Poll::new().unwrap();
        let stream = net::connect_nonblocking(listener.local_addr().unwrap()).unwrap();
        poll.register(&stream, Token(3), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token().0 == 3 && e.is_writable()));
        net::take_error(&stream).unwrap();
        let _ = listener.accept().unwrap();
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_the_error() {
        // Bind-then-drop: the port is (briefly) known-dead.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let poll = Poll::new().unwrap();
        let Ok(stream) = net::connect_nonblocking(addr) else {
            return; // synchronous refusal is equally correct
        };
        poll.register(&stream, Token(4), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty());
        assert!(
            net::take_error(&stream).is_err(),
            "refused connect must surface"
        );
    }

    #[test]
    fn nofile_limit_reads_and_never_lowers() {
        let (soft, _hard) = net::nofile_limit().unwrap();
        assert!(soft > 0);
        let after = net::raise_nofile_limit(soft).unwrap();
        assert!(after >= soft);
    }
}
