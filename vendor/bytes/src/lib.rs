//! Offline stand-in for [bytes](https://crates.io/crates/bytes).
//!
//! [`BytesMut`] is a thin newtype over `Vec<u8>` and [`BufMut`] the
//! append trait — exactly the surface the bit-I/O layer uses. The real
//! crate's zero-copy splitting machinery is deliberately absent.

// Vendored stand-in for an external crate: exempt from the
// workspace lint policy, as a registry dependency would be.
#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, yielding its bytes without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// "Freezes" into an immutable byte vector (the shim has no shared
    /// `Bytes` type; a plain `Vec<u8>` serves).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { inner: v }
    }
}

/// Append operations, mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_u8(&mut self, b: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.inner.push(b);
    }
    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.extend_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 6);
        assert_eq!(b.to_vec(), vec![0xAB, 1, 2, 1, 2, 3]);
        assert_eq!(&b[..2], &[0xAB, 1]);
    }
}
