//! Offline stand-in for [bytes](https://crates.io/crates/bytes).
//!
//! [`BytesMut`] is a thin newtype over `Vec<u8>`, [`BufMut`] the append
//! trait, and [`Buf`] the cursor-style read trait — the surface the
//! bit-I/O layer and the `partree-service` frame codec use. Method
//! names, semantics (big-endian integers, panic on under-run — exactly
//! as the real crate documents), and the `split_to`/`split_off`
//! signatures match the real crate, so swapping it back in is a no-op;
//! only the zero-copy sharing machinery is absent (splits copy).

// Vendored stand-in for an external crate: exempt from the
// workspace lint policy, as a registry dependency would be.
#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, yielding its bytes without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// "Freezes" into an immutable byte vector (the shim has no shared
    /// `Bytes` type; a plain `Vec<u8>` serves).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest. Panics when `at > len`, like the real crate.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.inner.len(), "split_to out of bounds");
        let head = self.inner.drain(..at).collect();
        BytesMut { inner: head }
    }

    /// Splits off and returns the bytes from `at` onward; `self` keeps
    /// the prefix. Panics when `at > len`, like the real crate.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.inner.len(), "split_off out of bounds");
        BytesMut {
            inner: self.inner.split_off(at),
        }
    }

    /// Splits off the entire contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        self.split_to(self.inner.len())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { inner: v }
    }
}

/// Cursor-style read operations, mirroring `bytes::Buf`.
///
/// As in the real crate, the `get_*` methods read big-endian and
/// **panic** when fewer than the requested bytes remain — callers that
/// parse untrusted input check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes. Panics when `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Fills `dst` from the front of the buffer, consuming the bytes.
    /// Panics when `dst.len() > remaining()`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "copy_to_slice under-run");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.inner.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.inner
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.inner.len(), "advance out of bounds");
        self.inner.drain(..cnt);
    }
}

/// Append operations, mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_u8(&mut self, b: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.inner.push(b);
    }
    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_reads_back_bufmut_writes() {
        let mut b = BytesMut::new();
        b.put_u8(0x7F);
        b.put_u16(0x0102);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0011_2233_4455_6677);
        b.put_slice(&[9, 8]);
        let mut r: &[u8] = &b;
        assert_eq!(r.remaining(), 17);
        assert_eq!(r.get_u8(), 0x7F);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0011_2233_4455_6677);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(tail, [9, 8]);
        assert!(!r.has_remaining());
    }

    #[test]
    fn bytesmut_consumes_from_front() {
        let mut b = BytesMut::from(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(b.get_u16(), 0x0001);
        b.advance(1);
        assert_eq!(b.chunk(), &[3, 4, 5]);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn split_variants() {
        let mut b = BytesMut::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.to_vec(), vec![3, 4, 5]);
        let tail = b.split_off(1);
        assert_eq!(b.to_vec(), vec![3]);
        assert_eq!(tail.to_vec(), vec![4, 5]);
        let mut c = BytesMut::from(vec![7, 7]);
        let all = c.split();
        assert!(c.is_empty());
        assert_eq!(all.to_vec(), vec![7, 7]);
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn advance_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        r.advance(3);
    }

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.extend_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 6);
        assert_eq!(b.to_vec(), vec![0xAB, 1, 2, 1, 2, 3]);
        assert_eq!(&b[..2], &[0xAB, 1]);
    }
}
