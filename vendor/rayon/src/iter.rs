//! A miniature indexed parallel-iterator library.
//!
//! Everything is *eager*: entry points materialize a `Vec` of items (for
//! slices these are references, so this is O(n) pointer bumps, not data
//! copies), adapters transform that `Vec`, and the two "drivers"
//! ([`drive_blocks`] for order-preserving work, plus the block-fold it
//! enables for reductions) fan blocks of items out over scoped threads.
//!
//! ## Determinism contract
//!
//! Reductions fold per-block partials **in block-index order**, and the
//! reduction block size ([`REDUCE_BLOCK`]) is a constant independent of
//! the worker count. Consequently `sum()` over `f64`-like non-associative
//! carriers produces bit-identical results at every pool width — the
//! property partree's determinism suite asserts.
//!
//! The same invariant makes the adaptive sequential cutoff safe: small
//! inputs skip the pool (and medium inputs cap their lane count) by
//! folding the *same* blocks in the *same* order on fewer threads, so
//! the cutoff changes scheduling cost only, never results.

use crate::pool::{current_num_threads, with_width};

/// Fixed block size for reductions. Must never depend on thread count.
const REDUCE_BLOCK: usize = 256;

/// Adaptive sequential cutoff: the minimum number of items a lane must
/// carry before a pool submission is worth its injector+wake
/// round-trip. Inputs smaller than this run inline on the calling
/// thread; larger inputs cap their lane count so no lane falls below
/// it. Override with `PARTREE_SEQ_CUTOFF` (read once; `0` disables the
/// cutoff). The default is calibrated against the executor's measured
/// submission overhead (~5–15 µs) versus per-item costs of the
/// cheapest `par_iter` bodies in the tree pipeline (a few ns): below a
/// few thousand items the round-trip dominates any possible speedup.
fn sequential_cutoff() -> usize {
    static CUTOFF: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CUTOFF.get_or_init(|| {
        std::env::var("PARTREE_SEQ_CUTOFF")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(2048)
    })
}

/// An eager parallel iterator: an ordered batch of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par_iter!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&collection → par_iter()`, mirroring `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
    <&'a C as IntoParallelIterator>::Item: 'a,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        self.into_par_iter()
    }
}

/// `&mut collection → par_iter_mut()`, mirroring `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Chunked views of slices, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Mutable chunked views, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Splits `items` into blocks of `block` elements (last one ragged),
/// applies `g` to each block on the persistent `partree-exec` pool (or,
/// under the legacy driver, on per-call scoped workers), and returns the
/// per-block results **in block order**.
///
/// Contiguous runs of blocks go to `min(width, nb, ⌈n/cutoff⌉)` lane
/// tasks — the last term is the adaptive sequential cutoff, which keeps
/// every lane above [`sequential_cutoff`] items and routes inputs
/// smaller than that entirely around the pool. Each lane writes its own
/// pre-split region of the output, so which executor worker runs a lane
/// — and in what order lanes complete — cannot affect the result.
fn drive_blocks<T, U, G>(items: Vec<T>, block: usize, g: G) -> Vec<U>
where
    T: Send,
    U: Send,
    G: Fn(Vec<T>) -> U + Sync,
{
    let width = current_num_threads();
    let n = items.len();
    // The sequential cutoff caps how many lanes the input may fan out
    // to — never how it is *split*: block boundaries and fold order are
    // untouched, so results stay bit-identical whether the cutoff
    // engages or not (a lane processes its run of blocks in order
    // either way; with one lane that run is simply all of them). Lanes
    // still propagate the *ambient* `width`, so nested parallel calls
    // inside `g` are not throttled by the outer input being small.
    let cutoff = sequential_cutoff();
    let lane_cap = if cutoff == 0 {
        usize::MAX
    } else {
        n.div_ceil(cutoff).max(1)
    };
    if width <= 1 || lane_cap <= 1 || n <= block {
        let mut out = Vec::with_capacity(n.div_ceil(block.max(1)));
        let mut it = items.into_iter();
        loop {
            let blk: Vec<T> = it.by_ref().take(block.max(1)).collect();
            if blk.is_empty() {
                break;
            }
            out.push(g(blk));
        }
        return out;
    }

    // Materialize the blocks, then hand contiguous runs of blocks to
    // `width` workers. Output slots are pre-split so each worker writes
    // its own disjoint region; order is by construction the block order.
    let mut blocks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let blk: Vec<T> = it.by_ref().take(block).collect();
        if blk.is_empty() {
            break;
        }
        blocks.push(blk);
    }
    let nb = blocks.len();
    let workers = width.min(nb).min(lane_cap);
    let mut out: Vec<Option<U>> = (0..nb).map(|_| None).collect();
    let g = &g;
    if crate::pool::legacy_driver() {
        std::thread::scope(|s| {
            let mut out_rest: &mut [Option<U>] = &mut out;
            let mut blk_it = blocks.into_iter();
            let per = nb / workers;
            let extra = nb % workers;
            for w in 0..workers {
                let count = per + usize::from(w < extra);
                let my_blocks: Vec<Vec<T>> = blk_it.by_ref().take(count).collect();
                let (mine, rest) = out_rest.split_at_mut(count);
                out_rest = rest;
                partree_exec::count_scoped_spawn();
                s.spawn(move || {
                    with_width(width, || {
                        for (slot, blk) in mine.iter_mut().zip(my_blocks) {
                            *slot = Some(g(blk));
                        }
                    })
                });
            }
        });
    } else {
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
        let mut out_rest: &mut [Option<U>] = &mut out;
        let mut blk_it = blocks.into_iter();
        let per = nb / workers;
        let extra = nb % workers;
        for w in 0..workers {
            let count = per + usize::from(w < extra);
            let my_blocks: Vec<Vec<T>> = blk_it.by_ref().take(count).collect();
            let (mine, rest) = out_rest.split_at_mut(count);
            out_rest = rest;
            // Lane tasks propagate the submitting pool's width so nested
            // parallel calls inside `g` observe the same ambient pool.
            tasks.push(Box::new(move || {
                with_width(width, || {
                    for (slot, blk) in mine.iter_mut().zip(my_blocks) {
                        *slot = Some(g(blk));
                    }
                })
            }));
        }
        partree_exec::global().run_all(tasks);
    }
    out.into_iter()
        .map(|u| u.expect("worker filled every slot"))
        .collect()
}

/// Block size for order-preserving operations (`map`, `for_each`): output
/// identity does not depend on the split, so we are free to match it to
/// the pool width for better load balance.
fn elastic_block(len: usize, width: usize) -> usize {
    len.div_ceil(width.saturating_mul(4).max(1)).max(1)
}

impl<T: Send> ParIter<T> {
    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Parallel map; preserves item order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let width = current_num_threads();
        let block = elastic_block(self.items.len(), width);
        let out_blocks = drive_blocks(self.items, block, |blk| {
            blk.into_iter().map(&f).collect::<Vec<U>>()
        });
        ParIter {
            items: out_blocks.into_iter().flatten().collect(),
        }
    }

    /// Parallel side-effecting loop. Items may run concurrently; the
    /// caller's closure must be `Sync`, which statically enforces the
    /// EREW/CREW discipline the PRAM layer documents.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let width = current_num_threads();
        let block = elastic_block(self.items.len(), width);
        drive_blocks(self.items, block, |blk| blk.into_iter().for_each(&f));
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Zips with another batch, truncating to the shorter length.
    pub fn zip<B>(self, other: B) -> ParIter<(T, B::Item)>
    where
        B: IntoParallelIterator,
    {
        let rhs = other.into_par_iter().items;
        ParIter {
            items: self.items.into_iter().zip(rhs).collect(),
        }
    }

    /// Deterministic parallel sum: fixed-size blocks folded in order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let partials = drive_blocks(self.items, REDUCE_BLOCK, |blk| blk.into_iter().sum::<S>());
        partials.into_iter().sum()
    }

    /// Deterministic parallel reduction with an identity, mirroring
    /// `ParallelIterator::reduce`. Blocks fold left-to-right from the
    /// identity; partials combine in block order.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let partials = drive_blocks(self.items, REDUCE_BLOCK, |blk| {
            blk.into_iter().fold(identity(), &op)
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Deterministic parallel reduction; `None` on an empty batch.
    /// Per-block partials are combined left-to-right in block order, so
    /// the result does not depend on the pool width even for
    /// non-associative `op`.
    pub fn reduce_with<F>(self, op: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Sync,
    {
        let partials = drive_blocks(self.items, REDUCE_BLOCK, |blk| blk.into_iter().reduce(&op));
        partials.into_iter().flatten().reduce(&op)
    }

    /// Parallel universally-quantified test (no cross-block
    /// short-circuit; blocks still stop at their first failure).
    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(T) -> bool + Sync,
    {
        let partials = drive_blocks(self.items, REDUCE_BLOCK, |blk| blk.into_iter().all(&f));
        partials.into_iter().all(|b| b)
    }

    /// Parallel existentially-quantified test.
    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(T) -> bool + Sync,
    {
        let partials = drive_blocks(self.items, REDUCE_BLOCK, |blk| blk.into_iter().any(&f));
        partials.into_iter().any(|b| b)
    }

    /// Parallel filter; preserves item order.
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let width = current_num_threads();
        let block = elastic_block(self.items.len(), width);
        let out_blocks = drive_blocks(self.items, block, |blk| {
            blk.into_iter().filter(|t| f(t)).collect::<Vec<T>>()
        });
        ParIter {
            items: out_blocks.into_iter().flatten().collect(),
        }
    }

    /// Parallel min by the natural order (deterministic: first minimum in
    /// index order wins, as with a left fold).
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.reduce_with(|a, b| if b < a { b } else { a })
    }

    /// Parallel max by the natural order.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.reduce_with(|a, b| if b > a { b } else { a })
    }

    /// Materializes into any `FromIterator` collection (items are already
    /// computed by the time `collect` runs, so this is a plain move).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    /// Parallel count (items are materialized, so this is `len`).
    pub fn count(self) -> usize {
        self.items.len()
    }
}

impl<A: Send, B: Send> ParIter<(A, B)> {
    /// Splits a batch of pairs into two collections, preserving order.
    pub fn unzip<FromA, FromB>(self) -> (FromA, FromB)
    where
        FromA: FromIterator<A>,
        FromB: FromIterator<B>,
    {
        // Items are already materialized; a sequential unzip is a move.
        let mut right = Vec::with_capacity(self.items.len());
        let left: FromA = self
            .items
            .into_iter()
            .map(|(a, b)| {
                right.push(b);
                a
            })
            .collect();
        (left, right.into_iter().collect())
    }
}

impl<T: Sync + Clone + Send> ParIter<&T> {
    /// Clones each referenced item.
    pub fn cloned(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().cloned().collect(),
        }
    }
}

impl<T: Sync + Copy + Send> ParIter<&T> {
    /// Copies each referenced item.
    pub fn copied(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::with_width;

    #[test]
    fn map_preserves_order_across_widths() {
        let base: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = with_width(1, || base.par_iter().map(|&x| x * 3).collect());
        let par: Vec<u64> = with_width(8, || base.par_iter().map(|&x| x * 3).collect());
        assert_eq!(seq, par);
    }

    #[test]
    fn float_sum_is_bit_identical_across_widths() {
        let xs: Vec<f64> = (1..50_000).map(|i| 1.0 / i as f64).collect();
        let s1: f64 = with_width(1, || xs.par_iter().map(|&x| x).sum());
        let s2: f64 = with_width(2, || xs.par_iter().map(|&x| x).sum());
        let s8: f64 = with_width(8, || xs.par_iter().map(|&x| x).sum());
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
    }

    #[test]
    fn chunks_mut_writes_disjointly() {
        let mut v = vec![0u32; 1000];
        with_width(4, || {
            v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
                for c in chunk.iter_mut() {
                    *c = i as u32;
                }
            })
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, (i / 7) as u32);
        }
    }

    #[test]
    fn join_runs_both_and_propagates_width() {
        let (a, b) = with_width(3, || {
            crate::join(crate::current_num_threads, crate::current_num_threads)
        });
        assert_eq!(a, 3);
        assert_eq!(b, 3);
    }

    #[test]
    fn reduce_with_matches_sequential() {
        let xs: Vec<u64> = (0..4096).collect();
        let m = with_width(5, || xs.par_iter().map(|&x| x).reduce_with(|a, b| a.max(b)));
        assert_eq!(m, Some(4095));
    }

    #[test]
    fn tiny_inputs_skip_the_pool_entirely() {
        // Well under the sequential cutoff: the whole batch must run
        // inline, with zero executor submissions.
        let before = partree_exec::global_snapshot().injected;
        let xs: Vec<u64> = (0..64).collect();
        let doubled: Vec<u64> = with_width(8, || xs.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled[63], 126);
        let after = partree_exec::global_snapshot().injected;
        assert_eq!(after, before, "a 64-item par_iter paid a pool round-trip");
    }

    #[test]
    fn cutoff_sized_inputs_agree_with_large_widths() {
        // Straddle the cutoff boundary: results (including a
        // non-associative f64 fold) must be bit-identical whether the
        // lane cap engages (small n), partially engages (medium n), or
        // is moot (large n).
        for n in [100usize, 2048, 2049, 10_000, 100_000] {
            let xs: Vec<f64> = (1..=n).map(|i| 1.0 / i as f64).collect();
            let s1: f64 = with_width(1, || xs.par_iter().map(|&x| x).sum());
            let s8: f64 = with_width(8, || xs.par_iter().map(|&x| x).sum());
            assert_eq!(s1.to_bits(), s8.to_bits(), "n = {n}");
        }
    }
}
