//! Thread-count control: a thread-local "current pool width" that
//! `ThreadPool::install` scopes and every driver consults.
//!
//! Width is a *semantic* knob — how many parallel lanes a driver splits
//! work into — decoupled from the OS threads that execute them: lanes
//! run on the shared persistent [`partree_exec`] pool. A `ThreadPool`
//! here is therefore still just a width; what changed underneath is
//! that drivers no longer spawn scoped threads per call.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

thread_local! {
    /// 0 means "unset": fall back to the machine's logical-CPU count.
    static WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn default_width() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Driver selector: 0 = unresolved (consult `PARTREE_EXEC_DISABLE`),
/// 1 = legacy spawn-per-call scoped threads, 2 = persistent executor.
static DRIVER: AtomicU8 = AtomicU8::new(0);

/// True when drivers should use the legacy spawn-per-call scoped-thread
/// path instead of the persistent `partree-exec` pool. Resolved once
/// from the `PARTREE_EXEC_DISABLE=1` environment variable; benchmarks
/// flip it at runtime via [`force_legacy_driver`] to A/B the two
/// substrates in one process (experiment E14).
pub(crate) fn legacy_driver() -> bool {
    match DRIVER.load(Ordering::Relaxed) {
        0 => {
            let legacy = std::env::var("PARTREE_EXEC_DISABLE").is_ok_and(|v| v == "1");
            DRIVER.store(if legacy { 1 } else { 2 }, Ordering::Relaxed);
            legacy
        }
        1 => true,
        _ => false,
    }
}

/// Forces the driver choice at runtime (benchmark hook; see
/// [`legacy_driver`]). Not for concurrent use with in-flight parallel
/// work — callers toggle it between measurement phases.
pub fn force_legacy_driver(legacy: bool) {
    DRIVER.store(if legacy { 1 } else { 2 }, Ordering::Relaxed);
}

/// The pool width parallel drivers on this thread will use.
pub fn current_num_threads() -> usize {
    let w = WIDTH.with(Cell::get);
    if w == 0 {
        default_width()
    } else {
        w
    }
}

/// Runs `f` with the thread-local width set to `width`, restoring the
/// previous value afterwards. Worker threads spawned by the iterator
/// drivers call this so nested parallel calls observe the pool they were
/// launched from.
pub fn with_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let prev = WIDTH.with(Cell::get);
    WIDTH.with(|w| w.set(width));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH.with(|w| w.set(self.0));
        }
    }
    let _guard = Restore(prev);
    f()
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the `num_threads` +
/// `build` path.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot
/// actually fail in the shim, the type exists for signature parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Requests an exact worker count; 0 means "machine default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A "pool" is just a width: execution happens on the shared persistent
/// `partree-exec` worker set, so building one of these is free and many
/// can coexist (each `install` merely scopes the ambient lane count).
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's width as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_width(self.width, f)
    }

    /// The width this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}
