//! Thread-count control: a thread-local "current pool width" that
//! `ThreadPool::install` scopes and every driver consults.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// 0 means "unset": fall back to the machine's logical-CPU count.
    static WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn default_width() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The pool width parallel drivers on this thread will use.
pub fn current_num_threads() -> usize {
    let w = WIDTH.with(Cell::get);
    if w == 0 {
        default_width()
    } else {
        w
    }
}

/// Runs `f` with the thread-local width set to `width`, restoring the
/// previous value afterwards. Worker threads spawned by the iterator
/// drivers call this so nested parallel calls observe the pool they were
/// launched from.
pub fn with_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let prev = WIDTH.with(Cell::get);
    WIDTH.with(|w| w.set(width));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH.with(|w| w.set(self.0));
        }
    }
    let _guard = Restore(prev);
    f()
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the `num_threads` +
/// `build` path.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot
/// actually fail in the shim, the type exists for signature parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Requests an exact worker count; 0 means "machine default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A "pool" is just a width: workers are spawned scoped per driver call,
/// which keeps the shim free of global state and shutdown ordering.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's width as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_width(self.width, f)
    }

    /// The width this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}
