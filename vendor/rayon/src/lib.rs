//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no access to the crates registry, so this
//! crate reimplements the *subset* of rayon's API that partree uses, on
//! top of `std::thread::scope`. Three properties matter here and are
//! guaranteed by construction:
//!
//! 1. **Same API shape.** `par_iter` / `par_chunks_mut` / `join` /
//!    `ThreadPoolBuilder` call sites compile unchanged, so swapping the
//!    real rayon back in later is a one-line `Cargo.toml` change.
//! 2. **Determinism across thread counts.** Reductions (`sum`,
//!    `reduce_with`, `all`) fold fixed-size blocks in index order, and the
//!    block size never depends on the worker count — so the result of
//!    every operation, including non-associative `f64` folds, is
//!    bit-identical under `with_threads(1)`, `with_threads(2)`, and
//!    `with_threads(8)`.
//! 3. **Real parallelism.** When the effective pool width is > 1, `map`,
//!    `for_each`, and `join` actually fan out over scoped threads; Brent
//!    scheduling degrades gracefully to sequential execution at width 1.

// Vendored stand-in for an external crate: exempt from the
// workspace lint policy, as a registry dependency would be.
#![allow(clippy::all)]

mod iter;
mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    //! The traits that make `.par_iter()` et al. resolve, mirroring
    //! `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParallelSlice, ParallelSliceMut,
    };
}

pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    ParallelSlice, ParallelSliceMut,
};

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Mirrors `rayon::join`: `a` runs on the calling thread; `b` runs on a
/// scoped worker when the current pool width allows it.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let width = current_num_threads();
    if width <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || pool::with_width(width, b));
        let ra = a();
        let rb = hb.join().expect("rayon-shim: joined task panicked");
        (ra, rb)
    })
}
