//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no access to the crates registry, so this
//! crate reimplements the *subset* of rayon's API that partree uses, on
//! top of the persistent [`partree_exec`] work-stealing pool. Three
//! properties matter here and are guaranteed by construction:
//!
//! 1. **Same API shape.** `par_iter` / `par_chunks_mut` / `join` /
//!    `ThreadPoolBuilder` call sites compile unchanged, so swapping the
//!    real rayon back in later is a one-line `Cargo.toml` change.
//! 2. **Determinism across thread counts and schedules.** Reductions
//!    (`sum`, `reduce_with`, `all`) fold fixed-size blocks in index
//!    order, and the block size never depends on the worker count — so
//!    the result of every operation, including non-associative `f64`
//!    folds, is bit-identical under `with_threads(1)`, `with_threads(2)`,
//!    and `with_threads(8)`, and independent of which executor worker
//!    steals which block.
//! 3. **Real parallelism without per-call spawns.** When the effective
//!    pool width is > 1, `map`, `for_each`, and `join` fan out as lane
//!    tasks on the shared `partree-exec` pool (steady-state OS-thread
//!    spawns per operation: zero); Brent scheduling degrades gracefully
//!    to inline sequential execution at width 1. The pre-executor
//!    spawn-per-call driver survives behind `PARTREE_EXEC_DISABLE=1` /
//!    [`force_legacy_driver`] as an A/B baseline for experiment E14.

// Vendored stand-in for an external crate: exempt from the
// workspace lint policy, as a registry dependency would be.
#![allow(clippy::all)]

mod iter;
mod pool;

pub use pool::{
    current_num_threads, force_legacy_driver, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

pub mod prelude {
    //! The traits that make `.par_iter()` et al. resolve, mirroring
    //! `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParallelSlice, ParallelSliceMut,
    };
}

pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    ParallelSlice, ParallelSliceMut,
};

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Mirrors `rayon::join`: `a` runs on the calling thread; `b` is queued
/// on the persistent executor when the current pool width allows it. A
/// worker that forked `b` and finds it unstolen pops it right back, so
/// the fast path costs one deque push/pop, not a thread spawn; while `b`
/// is stolen, the forking worker helps execute other ready work instead
/// of blocking (nested joins therefore cannot deadlock the pool).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let width = current_num_threads();
    if width <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    if pool::legacy_driver() {
        return std::thread::scope(|s| {
            partree_exec::count_scoped_spawn();
            let hb = s.spawn(move || pool::with_width(width, b));
            let ra = a();
            let rb = hb.join().expect("rayon-shim: joined task panicked");
            (ra, rb)
        });
    }
    partree_exec::global().join(a, move || pool::with_width(width, b))
}
