//! Offline stand-in for [rand 0.8](https://crates.io/crates/rand).
//!
//! The build environment cannot reach the crates registry, so this crate
//! provides the subset of the `rand` API that partree uses: the [`Rng`] /
//! [`SeedableRng`] traits, a deterministic [`rngs::StdRng`], and
//! [`seq::SliceRandom`] for shuffles. The generator is SplitMix64 — not
//! cryptographic, but statistically fine for workload generation and
//! property tests, and fully reproducible from a `u64` seed (which is the
//! only seeding mode the workspace uses).
//!
//! Note: streams are *not* bit-compatible with the real `rand` crate.
//! Nothing in the workspace depends on specific stream values — only on
//! determinism per seed — so swapping the real crate back in later merely
//! reshuffles test inputs.

// Vendored stand-in for an external crate: exempt from the
// workspace lint policy, as a registry dependency would be.
#![allow(clippy::all)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// A sample from the "standard" distribution of `T` (unit interval
    /// for floats, full range for integers, fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a `u64` to the unit interval `[0, 1)` with 53-bit precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (both inclusive; callers normalize).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The predecessor of `hi` (to convert exclusive bounds); `None` if
    /// the type is continuous.
    fn predecessor(hi: Self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                // Width as u128 handles the full-domain case without overflow.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain fallback would also have been
                // fine for tests, but this is just as cheap.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
            fn predecessor(hi: Self) -> Option<Self> {
                hi.checked_sub(1)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sampling range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn predecessor(_hi: Self) -> Option<Self> {
        None // continuous: `lo..hi` and `lo..=hi` sample identically here
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sampling range");
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
    fn predecessor(_hi: Self) -> Option<Self> {
        None
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        match T::predecessor(self.end) {
            Some(hi) => T::sample_inclusive(rng, self.start, hi),
            None => T::sample_inclusive(rng, self.start, self.end),
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The "standard" distribution, for [`Rng::gen`].
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    /// Alias: the workspace treats Small/Std identically.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Slice helpers, mirroring `rand::seq::SliceRandom`.

    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = r.gen_range(1..=6u64);
            assert!((1..=6).contains(&y));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }
}
