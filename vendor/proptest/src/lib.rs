//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API the workspace uses — the
//! [`proptest!`] macro, range/`Just`/`prop_oneof!`/`prop_map` strategies,
//! `prop::collection::vec`, and the `prop_assert*` / `prop_assume!`
//! macros — as a deterministic random-sampling harness.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its exact inputs (and the
//!   seed is derived from the test name, so reruns reproduce it), but no
//!   minimization is attempted.
//! * **No persistence.** `.proptest-regressions` files are ignored.
//! * Sampling is driven by the same SplitMix64 stream as the vendored
//!   `rand`, seeded per test from a hash of the test's name.

// Vendored stand-in for an external crate: exempt from the
// workspace lint policy, as a registry dependency would be.
#![allow(clippy::all)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Core types
// ---------------------------------------------------------------------

/// The RNG handed to strategies. Concrete (not generic) so that
/// `Strategy` stays object-safe for `prop_oneof!`.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
    /// A `prop_assert*` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Harness configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A generator of values. Object-safe; `sample` takes the concrete
/// [`TestRng`].
pub trait Strategy {
    type Value: fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Discards generated values not satisfying `f` (retrying; counts
    /// against the global rejection budget via `prop_assume` semantics).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            f,
            reason,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: fmt::Debug,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_filter`]. Retries locally up to a fixed budget,
/// then panics (mirrors proptest's global rejection cap, coarsely).
pub struct Filter<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.reason
        );
    }
}

/// Weighted union of boxed strategies, the engine behind `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed correctly")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (*self.start() as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// `any::<T>()` for the handful of types the workspace samples.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> FullRange<$t> {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> FullRange<bool> {
        FullRange(std::marker::PhantomData)
    }
}

pub mod collection {
    //! `prop::collection::vec` and the size specification it accepts.

    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: samples inputs until `config.cases` accepted
/// cases pass, a case fails (panic, with inputs), or the rejection budget
/// is exhausted.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut rng = TestRng::new(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 20 + 1000;
    while accepted < config.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{name}: prop_assume! rejected {rejected} cases \
                         (only {accepted}/{} accepted) — strategy too narrow",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed at case {accepted} \
                     (after {rejected} rejects)\n  inputs: {inputs}\n  {msg}"
                );
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// The test-defining macro. Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// docs
///     #[test]
///     fn prop_name(x in 0usize..10, v in prop::collection::vec(0u64..5, 1..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    let __inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", &$arg));
                        )+
                        s
                    };
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    (__inputs, __outcome)
                });
            }
        )*
    };
}

/// Boolean property assertion; fails the current case without panicking
/// through user code (the harness reports inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Weighted choice between strategies yielding the same value type.
///
/// `prop_oneof![8 => a, 1 => b]` or unweighted `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRng::new(crate::seed_for("x"));
        let mut b = crate::TestRng::new(crate::seed_for("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds, vec sizes respected, assume works.
        #[test]
        fn harness_works(
            n in 2usize..30,
            w in 1u32..5,
            v in prop::collection::vec(0u64..100, 1..20),
        ) {
            prop_assume!(n != 17);
            prop_assert!(n >= 2 && n < 30);
            prop_assert!(w >= 1 && w < 5);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert_eq!(n + 1, 1 + n);
        }

        #[test]
        fn oneof_and_map(c in prop_oneof![8 => (0u32..10).prop_map(|x| x * 2), 1 => Just(99u32)]) {
            prop_assert!(c == 99 || (c % 2 == 0 && c < 20));
        }
    }
}
