//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides API parity for the subset the workspace's benches use
//! (`benchmark_group`, `bench_with_input`, `bench_function`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) with a simple
//! median-of-samples timer instead of criterion's full statistical
//! machinery. One line is printed per benchmark:
//!
//! ```text
//! group/name/param        median 1.234 ms  (7 samples)  1.62 Melem/s
//! ```

// Vendored stand-in for an external crate: exempt from the
// workspace lint policy, as a registry dependency would be.
#![allow(clippy::all)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            ran: 0,
            _parent: self,
        }
    }

    /// Standalone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.render(), 10, None, f);
        self
    }
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            param: Some(param.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.param {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name, param: None }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    ran: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion default is 100; partree's benches
    /// set 10 for the heavy ones).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput used for rate lines on subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of benchmarks run so far in this group.
    pub fn len(&self) -> usize {
        self.ran
    }

    pub fn is_empty(&self) -> bool {
        self.ran == 0
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self.ran += 1;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, self.throughput, f);
        self.ran += 1;
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples (plus one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        hint::black_box(f()); // warm-up, also forces at least one run
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {}/s", si(n as f64 / median.as_secs_f64(), "elem")),
        Throughput::Bytes(n) => format!("  {}/s", si(n as f64 / median.as_secs_f64(), "B")),
    });
    println!(
        "{label:<48} median {:>10?}  ({} samples){}",
        median,
        b.samples.len(),
        rate.unwrap_or_default()
    );
}

fn si(x: f64, unit: &str) -> String {
    if x >= 1e9 {
        format!("{:.2} G{unit}", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M{unit}", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k{unit}", x / 1e3)
    } else {
        format!("{x:.2} {unit}")
    }
}

/// Declares a group-runner function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        assert_eq!(g.len(), 1);
        g.finish();
    }
}
